#include "arch/component_models.hpp"

#include <cmath>

namespace pimcomp {

namespace {

/// Table I reference points (PUMA instantiation).
constexpr double kPimmuPowerMw = 1221.76;
constexpr double kPimmuAreaMm2 = 0.77;
constexpr double kVfuPowerMw = 22.80;
constexpr double kVfuAreaMm2 = 0.048;
constexpr double kLocalMemPowerMw = 18.00;
constexpr double kLocalMemAreaMm2 = 0.085;
constexpr double kControlPowerMw = 8.00;
constexpr double kControlAreaMm2 = 0.11;
constexpr double kRouterPowerMw = 43.13;
constexpr double kRouterAreaMm2 = 0.14;
constexpr double kGlobalMemPowerMw = 257.72;
constexpr double kGlobalMemAreaMm2 = 2.42;
constexpr double kHtPowerMw = 10.40e3;
constexpr double kHtAreaMm2 = 22.88;

constexpr std::int64_t kRefLocalBytes = 64 * 1024;
constexpr std::int64_t kRefGlobalBytes = 4 * 1024 * 1024;
constexpr int kRefXbarsPerCore = 64;
constexpr int kRefFlitBytes = 8;

/// Leakage shares: analog crossbar arrays leak little (conductances hold
/// state without refresh) but their ADC/DAC bias networks leak; SRAM leaks
/// substantially; logic sits in between. These splits determine the
/// leakage-vs-dynamic breakdown of Fig 9.
constexpr double kPimmuLeakFraction = 0.15;
constexpr double kVfuLeakFraction = 0.20;
constexpr double kMemLeakFraction = 0.35;
constexpr double kControlLeakFraction = 0.25;
constexpr double kRouterLeakFraction = 0.20;
constexpr double kHtLeakFraction = 0.30;

}  // namespace

double cacti_lite_energy_per_byte_pj(std::int64_t capacity_bytes) {
  // Anchored at 1.1 pJ/byte for a 64 kB scratchpad; grows with sqrt of
  // capacity (bitline length), as CACTI's trend lines do.
  const double ratio = static_cast<double>(capacity_bytes) /
                       static_cast<double>(kRefLocalBytes);
  return 1.1 * std::sqrt(ratio);
}

double cacti_lite_leakage_mw(std::int64_t capacity_bytes) {
  // Anchored at Table I: 64 kB -> 18 mW total, 35% leakage.
  const double ratio = static_cast<double>(capacity_bytes) /
                       static_cast<double>(kRefLocalBytes);
  return kLocalMemPowerMw * kMemLeakFraction * ratio;
}

double cacti_lite_area_mm2(std::int64_t capacity_bytes) {
  const double ratio = static_cast<double>(capacity_bytes) /
                       static_cast<double>(kRefLocalBytes);
  return kLocalMemAreaMm2 * ratio;
}

double orion_lite_flit_energy_pj(int flit_bytes) {
  // Anchored at ~4.6 pJ per 64-bit flit-hop (Orion 3.0 ballpark for a 5-port
  // mesh router at 32 nm); scales linearly with flit width.
  return 4.6 * static_cast<double>(flit_bytes) /
         static_cast<double>(kRefFlitBytes);
}

double orion_lite_router_leakage_mw(int flit_bytes) {
  return kRouterPowerMw * kRouterLeakFraction * static_cast<double>(flit_bytes) /
         static_cast<double>(kRefFlitBytes);
}

std::vector<const ComponentSpec*> ComponentTable::rows() const {
  return {&pimmu,  &vfu,           &local_memory,  &control_unit, &core,
          &router, &global_memory, &hyper_transport, &chip};
}

ComponentTable build_component_table(const HardwareConfig& hw) {
  ComponentTable t;

  const double xbar_scale = static_cast<double>(hw.xbars_per_core) /
                            static_cast<double>(kRefXbarsPerCore);
  const double local_scale = static_cast<double>(hw.local_memory_bytes) /
                             static_cast<double>(kRefLocalBytes);
  const double global_scale = static_cast<double>(hw.global_memory_bytes) /
                              static_cast<double>(kRefGlobalBytes);
  const double vfu_scale = static_cast<double>(hw.vfus_per_core) / 12.0;
  const double flit_scale = static_cast<double>(hw.noc_flit_bytes) /
                            static_cast<double>(kRefFlitBytes);

  t.pimmu = {"PIMMU", "# crossbar", std::to_string(hw.xbars_per_core),
             kPimmuPowerMw * xbar_scale, kPimmuAreaMm2 * xbar_scale,
             kPimmuLeakFraction};
  t.vfu = {"VFU", "# per core", std::to_string(hw.vfus_per_core),
           kVfuPowerMw * vfu_scale, kVfuAreaMm2 * vfu_scale,
           kVfuLeakFraction};
  t.local_memory = {"Local Memory", "capacity",
                    std::to_string(hw.local_memory_bytes / 1024) + " kB",
                    kLocalMemPowerMw * local_scale,
                    kLocalMemAreaMm2 * local_scale, kMemLeakFraction};
  t.control_unit = {"Control Unit", "-", "-", kControlPowerMw,
                    kControlAreaMm2, kControlLeakFraction};

  const double core_power = t.pimmu.peak_power_mw + t.vfu.peak_power_mw +
                            t.local_memory.peak_power_mw +
                            t.control_unit.peak_power_mw;
  const double core_area = t.pimmu.area_mm2 + t.vfu.area_mm2 +
                           t.local_memory.area_mm2 + t.control_unit.area_mm2;
  const double core_leak =
      (t.pimmu.leakage_mw() + t.vfu.leakage_mw() + t.local_memory.leakage_mw() +
       t.control_unit.leakage_mw()) /
      core_power;
  t.core = {"Core", "# per chip", std::to_string(hw.cores_per_chip),
            core_power, core_area, core_leak};

  t.router = {"Router", "flit size",
              std::to_string(hw.noc_flit_bytes * 8), kRouterPowerMw * flit_scale,
              kRouterAreaMm2 * flit_scale, kRouterLeakFraction};
  t.global_memory = {"Global Memory", "capacity",
                     std::to_string(hw.global_memory_bytes / (1024 * 1024)) +
                         " MB",
                     kGlobalMemPowerMw * global_scale,
                     kGlobalMemAreaMm2 * global_scale, kMemLeakFraction};
  t.hyper_transport = {"Hyper Transport", "link bandwidth",
                       "6.40 GB/s", kHtPowerMw, kHtAreaMm2, kHtLeakFraction};

  // Concentrated mesh: four cores share one router. This reproduces the
  // paper's chip aggregates exactly (36 x 1.01 + 9 x 0.14 + 2.42 + 22.88 =
  // 62.92 mm^2; power likewise sums to 56.79 W).
  const int routers_per_chip = (hw.cores_per_chip + 3) / 4;
  const double chip_power = t.core.peak_power_mw * hw.cores_per_chip +
                            t.router.peak_power_mw * routers_per_chip +
                            t.global_memory.peak_power_mw +
                            t.hyper_transport.peak_power_mw;
  const double chip_area = t.core.area_mm2 * hw.cores_per_chip +
                           t.router.area_mm2 * routers_per_chip +
                           t.global_memory.area_mm2 + t.hyper_transport.area_mm2;
  const double chip_leak =
      (t.core.leakage_mw() * hw.cores_per_chip +
       t.router.leakage_mw() * routers_per_chip + t.global_memory.leakage_mw() +
       t.hyper_transport.leakage_mw()) /
      chip_power;
  t.chip = {"Chip", "-", "-", chip_power, chip_area, chip_leak};
  return t;
}

}  // namespace pimcomp
