#include "arch/noc.hpp"

#include <cmath>
#include <cstdlib>

#include "common/math_util.hpp"

namespace pimcomp {

NocModel::NocModel(const HardwareConfig& hw) : hw_(hw) {
  mesh_side_ = static_cast<int>(isqrt(hw.cores_per_chip));
  if (mesh_side_ * mesh_side_ < hw.cores_per_chip) ++mesh_side_;
}

int NocModel::hops(int core_a, int core_b) const {
  if (core_a == core_b) return 0;
  if (hw_.connection == CoreConnection::kBus) return 1;
  const int local_a = core_a % hw_.cores_per_chip;
  const int local_b = core_b % hw_.cores_per_chip;
  const int ax = local_a % mesh_side_;
  const int ay = local_a / mesh_side_;
  const int bx = local_b % mesh_side_;
  const int by = local_b / mesh_side_;
  return std::abs(ax - bx) + std::abs(ay - by);
}

bool NocModel::crosses_chip(int core_a, int core_b) const {
  return hw_.chip_of_core(core_a) != hw_.chip_of_core(core_b);
}

std::int64_t NocModel::flits(std::int64_t bytes) const {
  return ceil_div<std::int64_t>(bytes, hw_.noc_flit_bytes);
}

Picoseconds NocModel::transfer_latency(int core_a, int core_b,
                                       std::int64_t bytes) const {
  if (core_a == core_b || bytes <= 0) return 0;
  const int hop_count = std::max(1, hops(core_a, core_b));
  // Serialization over the narrowest link plus per-hop pipeline latency.
  const double noc_bytes_per_ps = hw_.noc_link_gbps * 1e9 / 1e12;
  Picoseconds latency =
      hop_count * hw_.noc_hop_latency +
      static_cast<Picoseconds>(static_cast<double>(bytes) / noc_bytes_per_ps);
  if (crosses_chip(core_a, core_b)) {
    const double ht_bytes_per_ps = hw_.ht_link_gbps * 1e9 / 1e12;
    latency += hw_.ht_latency + static_cast<Picoseconds>(
                                    static_cast<double>(bytes) / ht_bytes_per_ps);
  }
  return latency;
}

}  // namespace pimcomp
