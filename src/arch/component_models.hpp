#ifndef PIMCOMP_ARCH_COMPONENT_MODELS_HPP
#define PIMCOMP_ARCH_COMPONENT_MODELS_HPP

#include <string>
#include <vector>

#include "arch/hardware_config.hpp"

namespace pimcomp {

/// Power/area record for one hardware component (one row of the paper's
/// Table I). `peak_power_mw` is the max (dynamic + leakage) draw and
/// `leakage_fraction` the share of that power that burns whenever the
/// component is powered, busy or not.
struct ComponentSpec {
  std::string name;
  std::string parameter;       ///< Table I "Parameters" column
  std::string specification;   ///< Table I "Specification" column
  double peak_power_mw = 0.0;
  double area_mm2 = 0.0;
  double leakage_fraction = 0.0;

  double leakage_mw() const { return peak_power_mw * leakage_fraction; }
  double dynamic_mw() const { return peak_power_mw * (1.0 - leakage_fraction); }
};

/// The component table of the paper (Table I), parameterized by the hardware
/// config so that non-default geometries scale sensibly. Leakage fractions
/// follow the usual technology splits (SRAM-heavy blocks leak more than
/// analog crossbars).
struct ComponentTable {
  ComponentSpec pimmu;          ///< 64 ReRAM crossbars + DAC/ADC/S&H/S&A
  ComponentSpec vfu;            ///< 12 vector lanes
  ComponentSpec local_memory;   ///< 64 kB scratchpad
  ComponentSpec control_unit;
  ComponentSpec core;           ///< aggregate of the four above
  ComponentSpec router;
  ComponentSpec global_memory;  ///< 4 MB eDRAM
  ComponentSpec hyper_transport;
  ComponentSpec chip;           ///< aggregate chip row

  /// Rows in Table I order for printing.
  std::vector<const ComponentSpec*> rows() const;
};

/// Builds the component table for a hardware config. With
/// `HardwareConfig::puma_default()` the power/area columns reproduce the
/// paper's Table I values exactly; other geometries scale linearly in
/// crossbar count / memory capacity (CACTI-lite, below).
ComponentTable build_component_table(const HardwareConfig& hw);

/// --- CACTI-lite ------------------------------------------------------------
/// The paper models memories with CACTI 7 and routers with Orion 3.0. Those
/// tools are not available offline, so we substitute compact analytic fits
/// anchored to the Table I numbers (see DESIGN.md §3): energy per access
/// scales with the square root of capacity (bitline/wordline growth), power
/// and area scale linearly.

/// Dynamic read/write energy of an SRAM-style memory, per byte accessed.
double cacti_lite_energy_per_byte_pj(std::int64_t capacity_bytes);

/// Leakage power of an SRAM-style memory in mW.
double cacti_lite_leakage_mw(std::int64_t capacity_bytes);

/// Area of an SRAM-style memory in mm^2.
double cacti_lite_area_mm2(std::int64_t capacity_bytes);

/// --- Orion-lite -------------------------------------------------------------

/// Dynamic energy for moving one flit through one router hop, in pJ.
double orion_lite_flit_energy_pj(int flit_bytes);

/// Router leakage power in mW.
double orion_lite_router_leakage_mw(int flit_bytes);

}  // namespace pimcomp

#endif  // PIMCOMP_ARCH_COMPONENT_MODELS_HPP
