#ifndef PIMCOMP_CACHE_TIERED_STORE_HPP
#define PIMCOMP_CACHE_TIERED_STORE_HPP

#include <memory>
#include <vector>

#include "cache/cache_store.hpp"

namespace pimcomp {

/// Read-through / write-through composition of cache tiers, fastest first
/// (the session composes InMemoryStore over DiskStore):
///  * load() consults tiers in order and reports the first hit with that
///    tier's source attribution. It does NOT auto-promote: a deeper tier's
///    artifact is only JSON, and promotion without the decoded object
///    would poison the fast tier with entries that still need parsing.
///    The caller decodes the artifact and store()s the enriched entry
///    back, which is the promotion (the already-populated deeper tiers
///    keep their first-written file untouched).
///  * store() writes through every tier and returns the deepest tier that
///    newly accepted the entry (nullptr when none did).
/// Thread-safe because every tier is.
class TieredStore final : public CacheStore {
 public:
  explicit TieredStore(std::vector<std::unique_ptr<CacheStore>> tiers);

  const char* name() const override { return "tiered"; }

  std::optional<CacheHit> load(std::uint64_t key) override;
  const char* store(std::uint64_t key, const CacheEntry& entry) override;
  void erase(std::uint64_t key) override;
  std::uint64_t purge() override;
  /// Aggregated counters; `entries` is the deepest (most complete) tier's.
  CacheStoreStats stats() const override;

  std::size_t tier_count() const { return tiers_.size(); }
  CacheStore& tier(std::size_t i) { return *tiers_[i]; }
  const CacheStore& tier(std::size_t i) const { return *tiers_[i]; }

 private:
  std::vector<std::unique_ptr<CacheStore>> tiers_;
};

}  // namespace pimcomp

#endif  // PIMCOMP_CACHE_TIERED_STORE_HPP
