#ifndef PIMCOMP_CACHE_REMOTE_TIER_HPP
#define PIMCOMP_CACHE_REMOTE_TIER_HPP

#include <memory>

namespace pimcomp {

struct CacheConfig;  // cache/cache_config.hpp
class CacheStore;    // cache/cache_store.hpp

/// Builds the network cache tier for a CacheConfig with peers, or nullptr
/// when none is registered. This is a dependency-inversion seam: the
/// session (src/core/) composes its tier stack against the CacheStore
/// interface only, and the concrete fleet::RemoteStore (src/fleet/)
/// registers itself here at static-init time — the same direction-flip the
/// mapper/scheduler/backend registries use, keeping the include DAG free
/// of a core -> fleet edge (enforced by pimcomp-analyze --checker
/// layering). Binaries that never link src/fleet/ (unit tests, the bare
/// compiler CLI) simply get nullptr and must not enable peers.
std::unique_ptr<CacheStore> make_remote_tier(const CacheConfig& config);

/// Factory signature: must honor RemoteStore's contract (best-effort
/// network store over CacheConfig::peers; see fleet/remote_store.hpp).
using RemoteTierFactory =
    std::unique_ptr<CacheStore> (*)(const CacheConfig& config);

/// Installs `factory` as the remote-tier builder (latest registration
/// wins; nullptr uninstalls). Called from a static initializer in the
/// registering TU, mirroring PIMCOMP_REGISTER_MAPPER's idiom.
void register_remote_tier_factory(RemoteTierFactory factory);

}  // namespace pimcomp

#endif  // PIMCOMP_CACHE_REMOTE_TIER_HPP
