#ifndef PIMCOMP_CACHE_MEMORY_STORE_HPP
#define PIMCOMP_CACHE_MEMORY_STORE_HPP

#include <deque>
#include <unordered_map>

#include "cache/cache_store.hpp"
#include "common/thread_annotations.hpp"

namespace pimcomp {

/// The in-process cache tier: CompilerSession's historical mutex-guarded
/// map, extracted. Bounded FIFO when `max_entries > 0` (the session's
/// mapping cache keeps a long-lived sweep's memory flat; 0 = unbounded, the
/// workload cache's behavior). Insertion keeps the first writer: when two
/// identical scenarios raced to compute one key, their payloads are
/// bit-identical anyway, and keeping the first preserves the deterministic
/// hit accounting the pre-refactor session had. Entries carrying a decoded
/// object are stored decoded-only (the JSON artifact is redundant in
/// process — the persistent tier keeps it); artifact-only entries are kept
/// as-is.
class InMemoryStore final : public CacheStore {
 public:
  explicit InMemoryStore(std::size_t max_entries = 0)
      : max_entries_(max_entries) {}

  const char* name() const override { return "memory"; }

  std::optional<CacheHit> load(std::uint64_t key) override;
  const char* store(std::uint64_t key, const CacheEntry& entry) override;
  void erase(std::uint64_t key) override;
  std::uint64_t purge() override;
  CacheStoreStats stats() const override;

 private:
  const std::size_t max_entries_;

  mutable Mutex mutex_;
  // shared_ptr values so a hit only copies a pointer under the lock; the
  // (potentially large) payload copy happens in the caller, outside it.
  std::unordered_map<std::uint64_t, std::shared_ptr<const CacheEntry>>
      entries_ PIMCOMP_GUARDED_BY(mutex_);
  /// insertion order for FIFO eviction
  std::deque<std::uint64_t> order_ PIMCOMP_GUARDED_BY(mutex_);
  CacheStoreStats stats_ PIMCOMP_GUARDED_BY(mutex_);  ///< counters only
};

}  // namespace pimcomp

#endif  // PIMCOMP_CACHE_MEMORY_STORE_HPP
