#ifndef PIMCOMP_CACHE_CACHE_STORE_HPP
#define PIMCOMP_CACHE_CACHE_STORE_HPP

#include <cstdint>
#include <memory>
#include <optional>

#include "cache/cache_config.hpp"
#include "common/json.hpp"

namespace pimcomp {

/// One cached artifact as it moves between tiers. Either form may be
/// absent:
///  * `decoded` is the in-process object (e.g. a CompileResult) the memory
///    tier serves without re-parsing — never persisted, type-erased because
///    the store layer is deliberately ignorant of what it caches;
///  * `artifact` is the canonical versioned JSON the disk tier persists.
/// The session stores both on the compute path (artifact only when a disk
/// tier is configured, so the memory-only default never pays for encoding)
/// and re-attaches `decoded` when it promotes a disk hit into memory.
struct CacheEntry {
  Json artifact;
  std::shared_ptr<const void> decoded;

  bool has_artifact() const { return !artifact.is_null(); }
};

/// A successful load: the entry plus which tier satisfied it
/// (cache_sources::kMemory / kDisk — a static string, safe to hold).
struct CacheHit {
  CacheEntry entry;
  const char* source = cache_sources::kMemory;
};

/// Lifetime counters of one store (monotonic except entries/bytes, which
/// track the current contents).
struct CacheStoreStats {
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;  ///< disk tier: artifact bytes on disk; memory
                            ///< tier: 0 (decoded sizes are unknowable)
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t evictions = 0;
};

/// A keyed artifact store: one slot per 64-bit fingerprint. This is the
/// seam the session's caching is built on — InMemoryStore is the extracted
/// historical behavior, DiskStore adds cross-process persistence, and
/// TieredStore composes them read-through/write-through. Implementations
/// are thread-safe; keys are content fingerprints, so two racing writers
/// of one key always carry identical payloads and "first writer wins" is a
/// correctness-preserving policy everywhere.
class CacheStore {
 public:
  virtual ~CacheStore() = default;

  /// Store name for diagnostics ("memory", "disk", "tiered").
  virtual const char* name() const = 0;

  /// Looks `key` up; a hit reports the tier that served it. Never throws:
  /// any unreadable/corrupt/mismatched persisted entry is a miss.
  virtual std::optional<CacheHit> load(std::uint64_t key) = 0;

  /// Stores `entry` under `key`. Returns the source name of the deepest
  /// tier that newly accepted the entry, or nullptr when nothing was
  /// stored (slot already occupied, read-only tier, or I/O failure —
  /// stores are best-effort and never throw).
  virtual const char* store(std::uint64_t key, const CacheEntry& entry) = 0;

  /// Drops `key` everywhere it is present (e.g. after the caller found a
  /// persisted artifact undecodable at a level the store cannot check).
  virtual void erase(std::uint64_t key) = 0;

  /// Removes every entry; returns how many were dropped.
  virtual std::uint64_t purge() = 0;

  virtual CacheStoreStats stats() const = 0;

  /// Current entry count (stats().entries shortcut).
  std::uint64_t entry_count() const { return stats().entries; }
};

/// Formats a cache key the way the disk tier names files: 16 lowercase hex
/// digits, zero-padded ("00c0ffee00c0ffee"). Json numbers are doubles, so
/// 64-bit fingerprints travel as these strings inside artifacts too.
std::string cache_key_hex(std::uint64_t key);

/// Inverse of cache_key_hex; std::nullopt for anything that is not exactly
/// 16 hex digits.
std::optional<std::uint64_t> cache_key_from_hex(const std::string& hex);

}  // namespace pimcomp

#endif  // PIMCOMP_CACHE_CACHE_STORE_HPP
