#include "cache/memory_store.hpp"

#include <utility>

namespace pimcomp {

std::optional<CacheHit> InMemoryStore::load(std::uint64_t key) {
  std::shared_ptr<const CacheEntry> found;
  {
    MutexLock lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
      ++stats_.misses;
      return std::nullopt;
    }
    ++stats_.hits;
    found = it->second;
  }
  return CacheHit{*found, cache_sources::kMemory};
}

const char* InMemoryStore::store(std::uint64_t key, const CacheEntry& entry) {
  // An in-process consumer only ever uses the decoded object; when one is
  // present the (possibly megabytes-large) JSON artifact is redundant here
  // — the persistent tier is the one that keeps it. Entries without a
  // decoded object keep their artifact, so a pure-JSON store still works.
  CacheEntry kept;
  if (entry.decoded != nullptr) {
    kept.decoded = entry.decoded;  // don't even copy the dropped artifact
  } else {
    kept = entry;
  }
  auto stored = std::make_shared<const CacheEntry>(std::move(kept));
  MutexLock lock(mutex_);
  if (!entries_.emplace(key, std::move(stored)).second) return nullptr;
  ++stats_.stores;
  order_.push_back(key);
  // FIFO eviction: outstanding shared_ptr copies handed to callers keep
  // their payloads alive; only the cache's reference is dropped.
  while (max_entries_ != 0 && order_.size() > max_entries_) {
    entries_.erase(order_.front());
    order_.pop_front();
    ++stats_.evictions;
  }
  return cache_sources::kMemory;
}

void InMemoryStore::erase(std::uint64_t key) {
  MutexLock lock(mutex_);
  if (entries_.erase(key) == 0) return;
  // O(entries) scan, but erase() only runs on the rare undecodable-artifact
  // path; leaving the stale key would make FIFO eviction over-evict later.
  for (auto it = order_.begin(); it != order_.end(); ++it) {
    if (*it == key) {
      order_.erase(it);
      break;
    }
  }
}

std::uint64_t InMemoryStore::purge() {
  MutexLock lock(mutex_);
  const std::uint64_t dropped = entries_.size();
  entries_.clear();
  order_.clear();
  return dropped;
}

CacheStoreStats InMemoryStore::stats() const {
  MutexLock lock(mutex_);
  CacheStoreStats stats = stats_;
  stats.entries = entries_.size();
  stats.bytes = 0;
  return stats;
}

}  // namespace pimcomp
