#include "cache/disk_store.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace pimcomp {

namespace fs = std::filesystem;

namespace {

/// Everything the eviction scan needs about one on-disk file.
struct ArtifactFile {
  fs::path path;
  fs::file_time_type mtime;
  std::uint64_t bytes = 0;
};

/// One pass over the store's directory tree.
struct StoreScan {
  std::vector<ArtifactFile> artifacts;  ///< layout-valid artifact files
  std::vector<ArtifactFile> temps;      ///< this store's temp-file pattern
};

bool is_version_dir_name(const std::string& name) {
  if (name.size() < 2 || name[0] != 'v') return false;
  for (std::size_t i = 1; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
  }
  return true;
}

bool stat_file(const fs::directory_entry& entry, ArtifactFile* out) {
  std::error_code ec;
  if (!entry.is_regular_file(ec) || ec) return false;
  out->path = entry.path();
  out->mtime = entry.last_write_time(ec);
  if (ec) return false;
  out->bytes = entry.file_size(ec);
  return !ec;
}

/// Walks ONLY the store's own layout — `<root>/v<digits>/<2-hex>/
/// <16-hex>.json` plus the `.<name>.tmp.<pid>.<n>` temp files next to the
/// artifacts. Every destructive operation (eviction, purge) is fed by this
/// scan, so a --cache-dir pointed at a populated directory can never put
/// foreign files at risk: nothing outside the layout is even looked at.
/// Error-tolerant: files racing concurrent eviction/purge drop out.
StoreScan scan_store(const fs::path& root) {
  StoreScan scan;
  std::error_code ec;
  for (const fs::directory_entry& version_dir :
       fs::directory_iterator(root, ec)) {
    if (ec) break;
    std::error_code dir_ec;
    if (!version_dir.is_directory(dir_ec) || dir_ec ||
        !is_version_dir_name(version_dir.path().filename().string())) {
      continue;
    }
    std::error_code prefix_ec;
    for (const fs::directory_entry& prefix_dir :
         fs::directory_iterator(version_dir.path(), prefix_ec)) {
      if (prefix_ec) break;
      std::error_code sub_ec;
      if (!prefix_dir.is_directory(sub_ec) || sub_ec) continue;
      const std::string prefix = prefix_dir.path().filename().string();
      std::error_code file_ec;
      for (const fs::directory_entry& entry :
           fs::directory_iterator(prefix_dir.path(), file_ec)) {
        if (file_ec) break;
        const std::string name = entry.path().filename().string();
        ArtifactFile file;
        if (entry.path().extension() == ".json") {
          // `<16-hex>.json`, filed under its own 2-hex prefix.
          const std::string stem = entry.path().stem().string();
          if (cache_key_from_hex(stem).has_value() &&
              stem.compare(0, 2, prefix) == 0 && stat_file(entry, &file)) {
            scan.artifacts.push_back(std::move(file));
          }
        } else if (name.size() > 1 && name[0] == '.' &&
                   name.find(".json.tmp.") != std::string::npos &&
                   stat_file(entry, &file)) {
          scan.temps.push_back(std::move(file));
        }
      }
    }
  }
  return scan;
}

}  // namespace

DiskStore::DiskStore(CacheConfig config) : config_(std::move(config)) {
  PIMCOMP_CHECK(config_.enabled(), "DiskStore needs a cache directory");
}

std::string DiskStore::artifact_path(std::uint64_t key) const {
  const std::string hex = cache_key_hex(key);
  return (fs::path(config_.dir) /
          ("v" + std::to_string(kCacheSchemaVersion)) / hex.substr(0, 2) /
          (hex + ".json"))
      .string();
}

std::optional<CacheHit> DiskStore::load(std::uint64_t key) {
  const fs::path path = artifact_path(key);
  const auto miss = [this]() -> std::optional<CacheHit> {
    MutexLock lock(stats_mutex_);
    ++counters_.misses;
    return std::nullopt;
  };

  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) return miss();
    text.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof()) return miss();
  }

  Json artifact;
  bool valid = false;
  try {
    artifact = Json::parse(text);
    valid = artifact.is_object() &&
            artifact.get("schema", -1) == kCacheSchemaVersion &&
            artifact.get("key", std::string()) == cache_key_hex(key);
  } catch (const std::exception&) {
    valid = false;
  }
  if (!valid) {
    // Corrupt, truncated, or foreign content in our slot: a miss — and the
    // garbage is removed so the next store() can lay down a good artifact
    // (stores never overwrite an existing file). Narrow the unlink races
    // with a concurrent writer renaming a *valid* artifact onto this path
    // between our read and our remove: only unlink while the file still
    // has the size we actually read. A racing rename that slips through
    // anyway costs one recompute, never correctness.
    if (!config_.read_only) {
      std::error_code ec;
      const std::uintmax_t size_now = fs::file_size(path, ec);
      if (!ec && size_now == text.size()) fs::remove(path, ec);
    }
    return miss();
  }

  if (!config_.read_only) {
    // LRU bookkeeping: a hit makes this artifact the youngest. Best-effort;
    // a filesystem that refuses just ages the entry faster.
    std::error_code ec;
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
  }
  {
    MutexLock lock(stats_mutex_);
    ++counters_.hits;
  }
  CacheEntry entry;
  entry.artifact = std::move(artifact);
  return CacheHit{std::move(entry), cache_sources::kDisk};
}

const char* DiskStore::store(std::uint64_t key, const CacheEntry& entry) {
  if (config_.read_only || !entry.has_artifact()) return nullptr;
  const fs::path path = artifact_path(key);
  std::error_code ec;
  if (fs::exists(path, ec)) return nullptr;  // first writer won already

  Json artifact = entry.artifact;
  artifact["schema"] = kCacheSchemaVersion;
  artifact["key"] = cache_key_hex(key);

  // Unique temp name in the destination directory (rename must not cross
  // filesystems): pid disambiguates processes, the counter disambiguates
  // threads, and a crashed writer's leftover is swept by eviction.
  const fs::path tmp =
      path.parent_path() /
      ("." + path.filename().string() + ".tmp." +
       std::to_string(::getpid()) + "." +
       std::to_string(tmp_counter_.fetch_add(1)));
  try {
    fs::create_directories(path.parent_path());
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) return nullptr;
      out << artifact.dump(-1) << '\n';
      out.flush();
      if (!out.good()) {
        out.close();
        fs::remove(tmp, ec);
        return nullptr;
      }
    }
    fs::rename(tmp, path, ec);
    if (ec) {
      fs::remove(tmp, ec);
      return nullptr;
    }
  } catch (const std::exception&) {
    fs::remove(tmp, ec);
    return nullptr;
  }
  {
    MutexLock lock(stats_mutex_);
    ++counters_.stores;
  }
  evict_to_budget();
  return cache_sources::kDisk;
}

void DiskStore::erase(std::uint64_t key) {
  if (config_.read_only) return;
  std::error_code ec;
  fs::remove(artifact_path(key), ec);
}

std::uint64_t DiskStore::purge() {
  if (config_.read_only) return 0;
  std::uint64_t removed = 0;
  std::error_code ec;
  const StoreScan scan = scan_store(config_.dir);
  for (const ArtifactFile& file : scan.artifacts) {
    if (fs::remove(file.path, ec)) ++removed;
  }
  // Temp files are this store's garbage too; purging means empty.
  for (const ArtifactFile& file : scan.temps) fs::remove(file.path, ec);
  return removed;
}

void DiskStore::evict_to_budget() {
  StoreScan scan = scan_store(config_.dir);  // the one walk per store()

  // Leftover temp files from crashed writers are unreachable garbage, but
  // a *young* temp file may be a concurrent writer mid-store — only sweep
  // ones old enough that no live write can still own them. This runs even
  // in unbounded (max_bytes == 0) mode: orphaned temps would otherwise
  // accumulate forever there, with nothing but an explicit purge to
  // remove them.
  std::error_code ec;
  const auto tmp_cutoff =
      fs::file_time_type::clock::now() - std::chrono::hours(1);
  for (const ArtifactFile& tmp : scan.temps) {
    if (tmp.mtime < tmp_cutoff) fs::remove(tmp.path, ec);
  }
  if (config_.max_bytes == 0) return;  // unbounded: no artifact eviction

  std::uint64_t total = 0;
  for (const ArtifactFile& file : scan.artifacts) total += file.bytes;
  if (total <= config_.max_bytes) return;

  std::sort(scan.artifacts.begin(), scan.artifacts.end(),
            [](const ArtifactFile& a, const ArtifactFile& b) {
              return a.mtime < b.mtime;
            });
  std::uint64_t evicted = 0;
  for (const ArtifactFile& file : scan.artifacts) {
    if (total <= config_.max_bytes) break;
    if (!fs::remove(file.path, ec) || ec) continue;
    total -= std::min(total, file.bytes);
    ++evicted;
  }
  if (evicted != 0) {
    MutexLock lock(stats_mutex_);
    counters_.evictions += evicted;
  }
}

CacheStoreStats DiskStore::stats() const {
  CacheStoreStats stats;
  {
    MutexLock lock(stats_mutex_);
    stats = counters_;
  }
  stats.entries = 0;
  stats.bytes = 0;
  const std::string version_dir =
      "v" + std::to_string(kCacheSchemaVersion);
  for (const ArtifactFile& file : scan_store(config_.dir).artifacts) {
    stats.bytes += file.bytes;
    // Current-schema artifacts only count as entries; older versions are
    // dead weight awaiting eviction.
    const fs::path version = file.path.parent_path().parent_path();
    if (version.filename() == version_dir) ++stats.entries;
  }
  return stats;
}

}  // namespace pimcomp
