#include "cache/remote_tier.hpp"

#include <atomic>

#include "cache/cache_store.hpp"

namespace pimcomp {

namespace {

/// Written once from fleet/remote_store.cpp's static initializer, read by
/// every session constructor afterwards; atomic because sessions can be
/// constructed from any thread.
std::atomic<RemoteTierFactory> g_remote_tier_factory{nullptr};

}  // namespace

void register_remote_tier_factory(RemoteTierFactory factory) {
  g_remote_tier_factory.store(factory, std::memory_order_release);
}

std::unique_ptr<CacheStore> make_remote_tier(const CacheConfig& config) {
  RemoteTierFactory factory =
      g_remote_tier_factory.load(std::memory_order_acquire);
  if (factory == nullptr) return nullptr;
  return factory(config);
}

}  // namespace pimcomp
