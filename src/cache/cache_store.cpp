#include "cache/cache_store.hpp"

namespace pimcomp {

std::string cache_key_hex(std::uint64_t key) {
  static constexpr const char* digits = "0123456789abcdef";
  std::string hex(16, '0');
  for (int i = 15; i >= 0; --i) {
    hex[static_cast<std::size_t>(i)] = digits[key & 0xf];
    key >>= 4;
  }
  return hex;
}

std::optional<std::uint64_t> cache_key_from_hex(const std::string& hex) {
  if (hex.size() != 16) return std::nullopt;
  std::uint64_t key = 0;
  for (char c : hex) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else return std::nullopt;
    key = (key << 4) | static_cast<std::uint64_t>(digit);
  }
  return key;
}

}  // namespace pimcomp
