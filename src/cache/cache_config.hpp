#ifndef PIMCOMP_CACHE_CACHE_CONFIG_HPP
#define PIMCOMP_CACHE_CACHE_CONFIG_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace pimcomp {

/// Version of the persisted artifact schema. Artifacts live under
/// `<dir>/v<kCacheSchemaVersion>/...`, so a version bump makes every older
/// artifact invisible (a clean miss) instead of a parse error. Bump this
/// whenever the artifact JSON shape *or* any fingerprint algorithm changes —
/// the fingerprint-golden tests (tests/test_fingerprint_goldens.cpp) exist
/// to force that decision to be explicit: if they fail, either revert the
/// drift or bump this constant alongside new goldens.
/// v2: fingerprint(CompileOptions) hashes the lowering backend key, and
/// artifacts optionally carry a lowered "stream" section.
/// v3: fingerprint(CompileOptions) hashes the island-model GA knobs
/// (ga.islands, ga.migration_interval) — every option fingerprint moved.
inline constexpr int kCacheSchemaVersion = 3;

/// Where a cache hit or store landed, as reported to observers
/// (CacheEvent::source) and on the wire. The memory tier is the session's
/// in-process store; the disk tier survives the process; the remote tier
/// is a peer pimcompd daemon's disk tier, reached over the wire protocol.
namespace cache_sources {
inline constexpr const char kMemory[] = "memory";
inline constexpr const char kDisk[] = "disk";
inline constexpr const char kRemote[] = "remote";
}  // namespace cache_sources

/// Configuration of a session's persistent artifact tier. An empty `dir`
/// disables the disk tier entirely (the in-memory tier always runs), which
/// keeps the default CompilerSession byte-for-byte at its historical
/// behavior. Deliberately excluded from fingerprint(CompileOptions): where
/// artifacts are stored must never change what is computed.
struct CacheConfig {
  /// Root directory of the disk tier ("" = disabled). Created on demand;
  /// shared safely between concurrent processes (writes are atomic
  /// renames, readers treat partial/corrupt entries as misses).
  std::string dir;

  /// Soft bound on the disk tier's total artifact bytes. After every store
  /// the least-recently-used artifacts (by file mtime; reads bump it) are
  /// evicted until the total fits again. 0 = unbounded.
  std::uint64_t max_bytes = 256ull << 20;  // 256 MiB

  /// Read the disk tier but never write it: no stores, no mtime bumps, no
  /// eviction. For fleets where one producer warms a cache many read-only
  /// consumers share.
  bool read_only = false;

  /// Peer pimcompd endpoints ("unix:/run/a.sock", "10.0.0.2:7878") forming
  /// the remote cache tier: misses that fall through memory and disk are
  /// resolved against these daemons' caches over the wire protocol
  /// (cache_get), and freshly computed artifacts are pushed to them
  /// (cache_put). Empty (the default) disables the tier. Remote artifacts
  /// revalidate exactly like disk artifacts, so a lying peer costs a
  /// recompute, never correctness.
  std::vector<std::string> peers;

  /// Per-peer socket send/recv timeout: a hung peer turns into a miss
  /// after this many seconds instead of stalling a compile job.
  int peer_timeout_seconds = 5;

  /// Authentication token attached to every peer request (daemons started
  /// with --auth-token require it). Empty = no auth.
  std::string auth_token;

  /// Disk tier configured (the historical "cache on" predicate — remote
  /// peers are deliberately not part of it; see remote_enabled()).
  bool enabled() const { return !dir.empty(); }

  /// Remote tier configured.
  bool remote_enabled() const { return !peers.empty(); }
};

}  // namespace pimcomp

#endif  // PIMCOMP_CACHE_CACHE_CONFIG_HPP
