#ifndef PIMCOMP_CACHE_CACHE_CONFIG_HPP
#define PIMCOMP_CACHE_CACHE_CONFIG_HPP

#include <cstdint>
#include <string>

namespace pimcomp {

/// Version of the persisted artifact schema. Artifacts live under
/// `<dir>/v<kCacheSchemaVersion>/...`, so a version bump makes every older
/// artifact invisible (a clean miss) instead of a parse error. Bump this
/// whenever the artifact JSON shape *or* any fingerprint algorithm changes —
/// the fingerprint-golden tests (tests/test_fingerprint_goldens.cpp) exist
/// to force that decision to be explicit: if they fail, either revert the
/// drift or bump this constant alongside new goldens.
/// v2: fingerprint(CompileOptions) hashes the lowering backend key, and
/// artifacts optionally carry a lowered "stream" section.
inline constexpr int kCacheSchemaVersion = 2;

/// Where a cache hit or store landed, as reported to observers
/// (CacheEvent::source) and on the wire. The memory tier is the session's
/// in-process store; the disk tier survives the process.
namespace cache_sources {
inline constexpr const char kMemory[] = "memory";
inline constexpr const char kDisk[] = "disk";
}  // namespace cache_sources

/// Configuration of a session's persistent artifact tier. An empty `dir`
/// disables the disk tier entirely (the in-memory tier always runs), which
/// keeps the default CompilerSession byte-for-byte at its historical
/// behavior. Deliberately excluded from fingerprint(CompileOptions): where
/// artifacts are stored must never change what is computed.
struct CacheConfig {
  /// Root directory of the disk tier ("" = disabled). Created on demand;
  /// shared safely between concurrent processes (writes are atomic
  /// renames, readers treat partial/corrupt entries as misses).
  std::string dir;

  /// Soft bound on the disk tier's total artifact bytes. After every store
  /// the least-recently-used artifacts (by file mtime; reads bump it) are
  /// evicted until the total fits again. 0 = unbounded.
  std::uint64_t max_bytes = 256ull << 20;  // 256 MiB

  /// Read the disk tier but never write it: no stores, no mtime bumps, no
  /// eviction. For fleets where one producer warms a cache many read-only
  /// consumers share.
  bool read_only = false;

  bool enabled() const { return !dir.empty(); }
};

}  // namespace pimcomp

#endif  // PIMCOMP_CACHE_CACHE_CONFIG_HPP
