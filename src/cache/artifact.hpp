#ifndef PIMCOMP_CACHE_ARTIFACT_HPP
#define PIMCOMP_CACHE_ARTIFACT_HPP

#include <cstdint>
#include <memory>

#include "common/json.hpp"
// pimcomp-layer-exempt: the artifact codec (de)serializes core's
// CompileResult/CompileOptions — a type-only dependency on what it
// persists, with no call back into the session machinery.
#include "core/compiler.hpp"

namespace pimcomp {

/// Raised when a persisted artifact cannot be trusted: wrong schema,
/// fingerprint mismatch against the requesting session's workload, or a
/// payload that fails the mapping/schedule invariants. Callers treat it as
/// a cache miss (and evict the offending entry), never as a compile error.
class CacheArtifactError : public Error {
 public:
  explicit CacheArtifactError(const std::string& message) : Error(message) {}
};

/// Serializes a finished compilation into the disk tier's artifact JSON:
/// the mapping decision (integer chromosome), the full per-core operation
/// streams, the mapper's identity/fitness/convergence record, and the
/// `workload_fp`/`mapping_key` envelope that binds the artifact to exactly
/// one (graph, hardware) x options identity. CompileOptions and StageTimes
/// are deliberately NOT persisted: the requesting scenario's options are
/// fingerprint-equal by construction (they are the key), and a cache hit
/// reports zeroed stage times — no stage ran.
Json compile_result_to_artifact(const CompileResult& result,
                                std::uint64_t workload_fp,
                                std::uint64_t mapping_key);

/// Rebuilds a CompileResult from a persisted artifact against the
/// requesting session's own workload and options. Throws
/// CacheArtifactError when the artifact's workload fingerprint does not
/// match `expected_workload_fp` (an artifact for a different model or
/// hardware must never be served, whatever path aliasing produced it), and
/// CacheArtifactError/JsonError when the payload is malformed or violates
/// the solution/schedule invariants. The returned result is
/// indistinguishable from an in-memory mapping-cache hit: same solution,
/// same schedule, zeroed stage times.
CompileResult compile_result_from_artifact(
    const Json& artifact, std::shared_ptr<const Workload> workload,
    const CompileOptions& options, std::uint64_t expected_workload_fp);

}  // namespace pimcomp

#endif  // PIMCOMP_CACHE_ARTIFACT_HPP
