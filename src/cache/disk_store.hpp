#ifndef PIMCOMP_CACHE_DISK_STORE_HPP
#define PIMCOMP_CACHE_DISK_STORE_HPP

#include <atomic>
#include <string>

#include "cache/cache_store.hpp"
#include "common/thread_annotations.hpp"

namespace pimcomp {

/// The persistent cache tier: a content-addressed, versioned, on-disk
/// artifact store. One JSON artifact per key at
///
///   <dir>/v<kCacheSchemaVersion>/<first-2-hex>/<16-hex-key>.json
///
/// Discipline, chosen so any number of processes (several pimcompd
/// daemons, CLI runs, CI jobs) can share one directory with no lock file:
///  * writes go to a unique temp file in the destination directory and
///    land via rename(2) — readers never observe a partial artifact;
///  * loads that find an unreadable, unparseable, or wrong-envelope file
///    treat it as a miss and unlink the garbage (crash tolerance: a torn
///    tmp file or a truncated artifact self-heals on next touch);
///  * a slot that already holds a readable artifact is never rewritten
///    (keys are content fingerprints — a racing writer carries identical
///    bytes);
///  * total size is bounded by LRU eviction: loads bump the artifact's
///    mtime, stores evict oldest-mtime files (any schema version) until
///    the configured budget fits again.
/// read_only mode does none of the writes: no stores, no mtime bumps, no
/// unlinks, no eviction. Destructive maintenance (eviction, purge) walks
/// ONLY the store's own layout — paths matching
/// `v<digits>/<2-hex>/<16-hex>.json` and this store's temp-file pattern —
/// so pointing `dir` at a populated directory never endangers foreign
/// files.
class DiskStore final : public CacheStore {
 public:
  /// Does not touch the filesystem; directories appear on first store.
  /// Requires config.enabled().
  explicit DiskStore(CacheConfig config);

  const char* name() const override { return "disk"; }
  const CacheConfig& config() const { return config_; }

  std::optional<CacheHit> load(std::uint64_t key) override;
  const char* store(std::uint64_t key, const CacheEntry& entry) override;
  void erase(std::uint64_t key) override;
  /// Removes every artifact file under `dir` (all schema versions).
  std::uint64_t purge() override;
  /// `entries`/`bytes` are a directory walk at call time: artifact files of
  /// the *current* schema version / bytes across all versions.
  CacheStoreStats stats() const override;

  /// Path the artifact for `key` lives at (exposed for tests/tooling).
  std::string artifact_path(std::uint64_t key) const;

 private:
  /// Drops oldest-mtime artifacts until total bytes fit the budget.
  void evict_to_budget();

  const CacheConfig config_;
  std::atomic<std::uint64_t> tmp_counter_{0};  ///< unique temp-file names

  mutable Mutex stats_mutex_;
  /// hit/miss/store/eviction counters only; the artifacts themselves are
  /// deliberately lock-free — rename(2) discipline keeps multi-process
  /// sharing safe (see class comment).
  CacheStoreStats counters_ PIMCOMP_GUARDED_BY(stats_mutex_);
};

}  // namespace pimcomp

#endif  // PIMCOMP_CACHE_DISK_STORE_HPP
