#include "cache/tiered_store.hpp"

#include <utility>

#include "common/error.hpp"

namespace pimcomp {

TieredStore::TieredStore(std::vector<std::unique_ptr<CacheStore>> tiers)
    : tiers_(std::move(tiers)) {
  PIMCOMP_CHECK(!tiers_.empty(), "TieredStore needs at least one tier");
  for (const std::unique_ptr<CacheStore>& tier : tiers_) {
    PIMCOMP_CHECK(tier != nullptr, "TieredStore tier must not be null");
  }
}

std::optional<CacheHit> TieredStore::load(std::uint64_t key) {
  for (std::unique_ptr<CacheStore>& tier : tiers_) {
    if (std::optional<CacheHit> hit = tier->load(key)) return hit;
  }
  return std::nullopt;
}

const char* TieredStore::store(std::uint64_t key, const CacheEntry& entry) {
  const char* deepest = nullptr;
  for (std::unique_ptr<CacheStore>& tier : tiers_) {
    if (const char* stored = tier->store(key, entry)) deepest = stored;
  }
  return deepest;
}

void TieredStore::erase(std::uint64_t key) {
  for (std::unique_ptr<CacheStore>& tier : tiers_) tier->erase(key);
}

std::uint64_t TieredStore::purge() {
  std::uint64_t dropped = 0;
  for (std::unique_ptr<CacheStore>& tier : tiers_) dropped += tier->purge();
  return dropped;
}

CacheStoreStats TieredStore::stats() const {
  CacheStoreStats total;
  for (const std::unique_ptr<CacheStore>& tier : tiers_) {
    const CacheStoreStats stats = tier->stats();
    total.hits += stats.hits;
    total.misses += stats.misses;
    total.stores += stats.stores;
    total.evictions += stats.evictions;
    total.bytes += stats.bytes;
    total.entries = stats.entries;  // deepest tier wins
  }
  return total;
}

}  // namespace pimcomp
