#include "cache/artifact.hpp"

#include <optional>
#include <utility>

// pimcomp-layer-exempt: cached artifacts embed the lowered
// InstructionStream verbatim — a codec-only dependency on the artifact
// type, not on any backend lowering logic.
#include "backend/instruction_stream.hpp"
#include "cache/cache_store.hpp"

namespace pimcomp {

namespace {

/// One Operation as a compact 10-tuple. Field order is part of the schema:
/// changing it requires a kCacheSchemaVersion bump.
///   [kind, node, ag, window, bytes, elements, peer, tag, xbars, local_usage]
Json operation_to_json(const Operation& op) {
  Json row = Json::array();
  row.push_back(static_cast<int>(op.kind));
  row.push_back(static_cast<std::int64_t>(op.node));
  row.push_back(static_cast<std::int64_t>(op.ag));
  row.push_back(static_cast<std::int64_t>(op.window));
  row.push_back(op.bytes);
  row.push_back(op.elements);
  row.push_back(static_cast<std::int64_t>(op.peer));
  row.push_back(static_cast<std::int64_t>(op.tag));
  row.push_back(static_cast<std::int64_t>(op.xbars));
  row.push_back(op.local_usage);
  return row;
}

Operation operation_from_json(const Json& row) {
  if (!row.is_array() || row.size() != 10) {
    throw CacheArtifactError("artifact operation row must be a 10-tuple");
  }
  const std::int64_t kind = row.at(std::size_t(0)).as_int();
  if (kind < 0 || kind > static_cast<std::int64_t>(OpKind::kStoreGlobal)) {
    throw CacheArtifactError("artifact operation kind out of range: " +
                             std::to_string(kind));
  }
  Operation op;
  op.kind = static_cast<OpKind>(kind);
  op.node = static_cast<NodeId>(row.at(std::size_t(1)).as_int());
  op.ag = static_cast<std::int32_t>(row.at(std::size_t(2)).as_int());
  op.window = static_cast<std::int32_t>(row.at(std::size_t(3)).as_int());
  op.bytes = row.at(std::size_t(4)).as_int();
  op.elements = row.at(std::size_t(5)).as_int();
  op.peer = static_cast<std::int32_t>(row.at(std::size_t(6)).as_int());
  op.tag = static_cast<std::int32_t>(row.at(std::size_t(7)).as_int());
  op.xbars = static_cast<std::int32_t>(row.at(std::size_t(8)).as_int());
  op.local_usage = row.at(std::size_t(9)).as_int();
  return op;
}

Json int64_array(const std::vector<std::int64_t>& values) {
  Json array = Json::array();
  for (std::int64_t v : values) array.push_back(v);
  return array;
}

std::vector<std::int64_t> int64_vector(const Json& array, const char* what) {
  if (!array.is_array()) {
    throw CacheArtifactError(std::string("artifact ") + what +
                             " must be an array");
  }
  std::vector<std::int64_t> values;
  values.reserve(array.size());
  for (std::size_t i = 0; i < array.size(); ++i) {
    values.push_back(array.at(i).as_int());
  }
  return values;
}

Json schedule_to_json(const Schedule& schedule) {
  Json programs = Json::array();
  for (const std::vector<Operation>& program : schedule.programs) {
    Json ops = Json::array();
    for (const Operation& op : program) ops.push_back(operation_to_json(op));
    programs.push_back(std::move(ops));
  }
  Json json = Json::object();
  json["ag_count"] = schedule.ag_count;
  json["total_ops"] = schedule.total_ops;
  json["spill_bytes"] = int64_array(schedule.spill_bytes);
  json["peak_local_bytes"] = int64_array(schedule.peak_local_bytes);
  json["programs"] = std::move(programs);
  return json;
}

Schedule schedule_from_json(const Json& json, int expected_cores) {
  Schedule schedule;
  schedule.ag_count = static_cast<int>(json.at("ag_count").as_int());
  schedule.total_ops = json.at("total_ops").as_int();
  schedule.spill_bytes = int64_vector(json.at("spill_bytes"), "spill_bytes");
  schedule.peak_local_bytes =
      int64_vector(json.at("peak_local_bytes"), "peak_local_bytes");
  const Json& programs = json.at("programs");
  if (!programs.is_array() ||
      static_cast<int>(programs.size()) != expected_cores) {
    throw CacheArtifactError(
        "artifact schedule core count does not match the workload's "
        "hardware (" +
        std::to_string(programs.is_array() ? programs.size() : 0) + " vs " +
        std::to_string(expected_cores) + ")");
  }
  schedule.programs.reserve(programs.size());
  std::int64_t ops = 0;
  for (std::size_t core = 0; core < programs.size(); ++core) {
    const Json& rows = programs.at(core);
    if (!rows.is_array()) {
      throw CacheArtifactError("artifact core program must be an array");
    }
    std::vector<Operation> program;
    program.reserve(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      program.push_back(operation_from_json(rows.at(i)));
    }
    ops += static_cast<std::int64_t>(program.size());
    schedule.programs.push_back(std::move(program));
  }
  if (ops != schedule.total_ops) {
    throw CacheArtifactError("artifact total_ops (" +
                             std::to_string(schedule.total_ops) +
                             ") disagrees with its own op streams (" +
                             std::to_string(ops) + ")");
  }
  return schedule;
}

Json ga_stats_to_json(const GaStats& stats) {
  Json history = Json::array();
  for (double best : stats.best_history) history.push_back(best);
  Json json = Json::object();
  json["initial_best"] = stats.initial_best;
  json["final_best"] = stats.final_best;
  json["evaluations"] = stats.evaluations;
  json["best_history"] = std::move(history);
  return json;
}

GaStats ga_stats_from_json(const Json& json) {
  GaStats stats;
  stats.initial_best = json.get("initial_best", 0.0);
  stats.final_best = json.get("final_best", 0.0);
  stats.evaluations = json.get("evaluations", 0);
  if (json.contains("best_history")) {
    const Json& history = json.at("best_history");
    for (std::size_t i = 0; i < history.size(); ++i) {
      stats.best_history.push_back(history.at(i).as_number());
    }
  }
  return stats;
}

}  // namespace

Json compile_result_to_artifact(const CompileResult& result,
                                std::uint64_t workload_fp,
                                std::uint64_t mapping_key) {
  Json artifact = Json::object();
  // Envelope first: schema/key are (re)stamped by DiskStore::store, but a
  // self-describing artifact survives being moved between directories.
  artifact["schema"] = kCacheSchemaVersion;
  artifact["key"] = cache_key_hex(mapping_key);
  artifact["workload_fp"] = cache_key_hex(workload_fp);
  artifact["mapper"] = result.mapper_name;
  artifact["estimated_fitness"] = result.estimated_fitness;
  artifact["solution"] = result.solution.to_json();
  artifact["ga_stats"] = ga_stats_to_json(result.ga_stats);
  artifact["schedule"] = schedule_to_json(result.schedule);
  if (result.stream != nullptr) {
    // Lowered instruction streams ride the mapping artifact: the backend
    // key is part of fingerprint(CompileOptions), so an artifact under this
    // key either always or never carries a stream for its requesters.
    artifact["stream"] = result.stream->to_json();
  }
  return artifact;
}

CompileResult compile_result_from_artifact(
    const Json& artifact, std::shared_ptr<const Workload> workload,
    const CompileOptions& options, std::uint64_t expected_workload_fp) {
  if (!artifact.is_object()) {
    throw CacheArtifactError("artifact must be a JSON object");
  }
  if (artifact.get("schema", -1) != kCacheSchemaVersion) {
    throw CacheArtifactError(
        "artifact schema version mismatch (artifact " +
        std::to_string(artifact.get("schema", -1)) + ", this build " +
        std::to_string(kCacheSchemaVersion) + ")");
  }
  const std::string workload_fp = artifact.get("workload_fp", std::string());
  if (workload_fp != cache_key_hex(expected_workload_fp)) {
    throw CacheArtifactError(
        "artifact workload fingerprint " + workload_fp +
        " does not match the requesting session's " +
        cache_key_hex(expected_workload_fp) +
        " — refusing to serve a mapping for a different model/hardware");
  }

  const Workload& workload_ref = *workload;
  CompileResult result{
      std::move(workload),
      MappingSolution::from_json(workload_ref, artifact.at("solution")),
      /*schedule=*/{},
      options,
      /*stage_times=*/{},  // a cache hit runs no stage
      artifact.get("estimated_fitness", 0.0),
      artifact.get("mapper", std::string()),
      ga_stats_from_json(artifact.contains("ga_stats")
                             ? artifact.at("ga_stats")
                             : Json::object()),
  };
  result.schedule = schedule_from_json(artifact.at("schedule"),
                                       result.solution.core_count());

  if (!options.backend.empty()) {
    // The requester compiled with a lowering backend, so a servable
    // artifact must carry the lowered stream — an older artifact without
    // one is a miss (the caller recomputes and re-stores), never a
    // silently stream-less result.
    if (!artifact.contains("stream")) {
      throw CacheArtifactError(
          "artifact has no lowered instruction stream but the requesting "
          "compilation selected backend '" + options.backend + "'");
    }
    const std::optional<std::uint64_t> key =
        cache_key_from_hex(artifact.get("key", std::string()));
    if (!key.has_value()) {
      throw CacheArtifactError("artifact cache key is not a 16-digit hex "
                               "fingerprint");
    }
    try {
      InstructionStream stream =
          InstructionStream::from_json(artifact.at("stream"), *key);
      if (stream.backend != options.backend) {
        throw CacheArtifactError(
            "artifact stream was emitted by backend '" + stream.backend +
            "', requester wants '" + options.backend + "'");
      }
      result.stream =
          std::make_shared<const InstructionStream>(std::move(stream));
    } catch (const InstructionStreamError& e) {
      throw CacheArtifactError(e.what());
    }
  }
  return result;
}

}  // namespace pimcomp
