// The `sim` backend: src/sim/'s cycle-accurate model rebuilt as an
// interpreter of the instruction-stream artifact. Lowering is the reference
// emission; execute() replays the stream with the exact arithmetic, event
// ordering and aggregation of the legacy Simulator — integer picosecond
// clocks and identically-ordered double accumulations — so its reports are
// bit-identical to Simulator::run() on the schedule the stream was lowered
// from (the acceptance contract tests/test_backend.cpp pins).

#include <algorithm>
#include <queue>
#include <sstream>
#include <vector>

#include "arch/energy_model.hpp"
#include "arch/noc.hpp"
#include "backend/backend.hpp"
#include "common/error.hpp"
#include "common/statistics.hpp"
#include "sim/channel.hpp"

namespace pimcomp {

namespace {

/// Transfer duration of `bytes` at `gbps` (GB/s) in picoseconds.
Picoseconds bandwidth_time(std::int64_t bytes, double gbps) {
  if (bytes <= 0) return 0;
  return static_cast<Picoseconds>(static_cast<double>(bytes) * 1000.0 / gbps);
}

struct CoreState {
  std::size_t pc = 0;
  Picoseconds clock = 0;        ///< completion of the last in-order op
  Picoseconds issue_clock = 0;  ///< next MVM issue slot
  Picoseconds last_event = 0;   ///< latest completion incl. MVM drains
  Picoseconds busy = 0;
  TimeWeightedAverage usage;
  Picoseconds last_usage_time = 0;
};

class SimBackend : public Backend {
 public:
  std::string name() const override { return "sim"; }

  InstructionStream lower(const LowerInput& input) const override {
    PIMCOMP_CHECK(input.schedule != nullptr && input.options != nullptr,
                  "sim backend needs a schedule and options");
    return InstructionStream::from_schedule(
        *input.schedule, input.options->mode,
        input.options->parallelism_degree, name(), input.mapping_key);
  }

  bool can_execute() const override { return true; }

  SimReport execute(const InstructionStream& stream,
                    const HardwareConfig& hw) const override;
};

SimReport SimBackend::execute(const InstructionStream& stream,
                              const HardwareConfig& hw) const {
  stream.validate();
  HardwareConfig hw_validated = hw;
  hw_validated.validate();
  const HardwareConfig& hw_ = hw_validated;
  PIMCOMP_CHECK(stream.parallelism_degree >= 1,
                "parallelism degree must be >= 1");

  const int cores = stream.core_count();
  PIMCOMP_CHECK(cores > 0, "instruction stream has no cores");
  PIMCOMP_CHECK(cores <= hw_.core_count,
                "instruction stream uses more cores than the hardware has");

  const EnergyModel energy(hw_);
  const NocModel noc(hw_);
  const Picoseconds t_mvm = hw_.mvm_latency;
  const Picoseconds t_issue =
      hw_.mvm_issue_interval(stream.parallelism_degree);
  const std::int64_t act_bytes = hw_.activation_bits / 8;

  std::vector<CoreState> cs(static_cast<std::size_t>(cores));
  std::vector<Picoseconds> ag_done(static_cast<std::size_t>(stream.ag_count),
                                   0);
  ChannelNetwork channels;
  Picoseconds gmem_free = 0;

  SimReport report;

  auto record_usage = [&](CoreState& core, Picoseconds t,
                          std::int64_t usage) {
    const Picoseconds at = std::max(t, core.last_usage_time);
    core.usage.record(at, static_cast<double>(usage));
    core.last_usage_time = at;
  };

  auto execute_inst = [&](int c, const Instruction& inst) {
    CoreState& core = cs[static_cast<std::size_t>(c)];
    const Picoseconds dep =
        (inst.opcode != Opcode::kMvm && inst.ag >= 0)
            ? ag_done[static_cast<std::size_t>(inst.ag)]
            : 0;
    Picoseconds effect_time = 0;

    switch (inst.opcode) {
      case Opcode::kMvm: {
        PIMCOMP_ASSERT(inst.ag >= 0 && inst.ag < stream.ag_count,
                       "MVM references an unknown AG");
        Picoseconds start = std::max(core.issue_clock, core.clock);
        start = std::max(start, ag_done[static_cast<std::size_t>(inst.ag)]);
        core.issue_clock = start + t_issue;
        ag_done[static_cast<std::size_t>(inst.ag)] = start + t_mvm;
        core.last_event = std::max(core.last_event, start + t_mvm);
        core.busy += t_issue;
        report.dynamic_energy.mvm +=
            energy.mvm_energy_per_xbar() * inst.xbars;
        ++report.mvm_ops;
        effect_time = start;
        break;
      }
      case Opcode::kValu: {
        const Picoseconds start = std::max(core.clock, dep);
        const double ns =
            static_cast<double>(inst.elements) / hw_.vfu_ops_per_ns;
        const Picoseconds dur = from_ns(ns);
        core.clock = start + dur;
        core.last_event = std::max(core.last_event, core.clock);
        core.busy += dur;
        report.dynamic_energy.vfu +=
            energy.vfu_energy_per_element() *
            static_cast<double>(inst.elements);
        report.dynamic_energy.local_memory +=
            energy.local_mem_energy_per_byte() *
            static_cast<double>(2 * inst.elements * act_bytes);
        ++report.vfu_ops;
        effect_time = core.clock;
        break;
      }
      case Opcode::kLoad:
      case Opcode::kStore: {
        Picoseconds start = std::max(core.clock, dep);
        start = std::max(start, gmem_free);
        const Picoseconds dur =
            bandwidth_time(inst.bytes, hw_.global_memory_gbps);
        gmem_free = start + dur;
        core.clock = start + dur;
        core.last_event = std::max(core.last_event, core.clock);
        core.busy += dur;
        report.dynamic_energy.global_memory +=
            energy.global_mem_energy_per_byte() *
            static_cast<double>(inst.bytes);
        report.dynamic_energy.local_memory +=
            energy.local_mem_energy_per_byte() *
            static_cast<double>(inst.bytes);
        report.global_traffic_bytes += inst.bytes;
        effect_time = core.clock;
        break;
      }
      case Opcode::kSend: {
        const Picoseconds start = std::max(core.clock, dep);
        const Picoseconds inject =
            bandwidth_time(inst.bytes, hw_.local_memory_gbps);
        core.clock = start + inject;
        core.busy += inject;
        const Picoseconds arrival =
            core.clock + noc.transfer_latency(c, inst.peer, inst.bytes);
        channels.send(c, inst.peer, inst.tag, arrival, inst.bytes);
        core.last_event = std::max(core.last_event, core.clock);
        report.dynamic_energy.noc +=
            energy.noc_energy_per_flit_hop() *
            static_cast<double>(noc.flits(inst.bytes) *
                                std::max(1, noc.hops(c, inst.peer)));
        if (noc.crosses_chip(c, inst.peer)) {
          report.dynamic_energy.noc +=
              energy.ht_energy_per_byte() * static_cast<double>(inst.bytes);
        }
        report.dynamic_energy.local_memory +=
            energy.local_mem_energy_per_byte() *
            static_cast<double>(inst.bytes);
        ++report.comm_messages;
        report.comm_bytes += inst.bytes;
        effect_time = core.clock;
        break;
      }
      case Opcode::kRecv: {
        const ChannelNetwork::Message msg =
            channels.pop(inst.peer, c, inst.tag);
        if (msg.bytes != inst.bytes) {
          std::ostringstream oss;
          oss << "channel byte mismatch on " << inst.peer << "->" << c
              << ": sent " << msg.bytes << ", receiver expected "
              << inst.bytes;
          throw SimulationError(oss.str());
        }
        Picoseconds start = std::max(core.clock, msg.arrival);
        start = std::max(start, dep);
        const Picoseconds dur =
            bandwidth_time(inst.bytes, hw_.local_memory_gbps);
        core.clock = start + dur;
        core.last_event = std::max(core.last_event, core.clock);
        core.busy += dur;
        report.dynamic_energy.local_memory +=
            energy.local_mem_energy_per_byte() *
            static_cast<double>(inst.bytes);
        effect_time = core.clock;
        break;
      }
    }

    if (inst.local_usage >= 0) {
      record_usage(core, effect_time, inst.local_usage);
    }
  };

  // Globally time-ordered execution, identical to the legacy simulator:
  // always advance the core whose next instruction can start earliest so
  // shared-resource arbitration (the global-memory bandwidth server) stays
  // causal. Cores blocked on empty channels park until a matching SEND.
  auto next_ready = [&](int c) -> Picoseconds {
    const CoreState& core = cs[static_cast<std::size_t>(c)];
    const auto& program = stream.cores[static_cast<std::size_t>(c)];
    PIMCOMP_ASSERT(core.pc < program.size(), "next_ready past program end");
    const Instruction& inst = program[core.pc];
    const Picoseconds dep =
        (inst.opcode != Opcode::kMvm && inst.ag >= 0)
            ? ag_done[static_cast<std::size_t>(inst.ag)]
            : 0;
    switch (inst.opcode) {
      case Opcode::kMvm:
        return std::max({core.issue_clock, core.clock,
                         ag_done[static_cast<std::size_t>(inst.ag)]});
      case Opcode::kRecv:
        // Caller guarantees a message is queued.
        return std::max(core.clock, dep);
      default:
        return std::max(core.clock, dep);
    }
  };

  // Min-heap of (ready time, core); parked cores wait for channel arrivals.
  std::priority_queue<std::pair<Picoseconds, int>,
                      std::vector<std::pair<Picoseconds, int>>,
                      std::greater<>>
      ready_queue;
  std::vector<bool> parked(static_cast<std::size_t>(cores), false);
  std::vector<bool> queued(static_cast<std::size_t>(cores), false);

  auto enqueue = [&](int c) {
    const CoreState& core = cs[static_cast<std::size_t>(c)];
    const auto& program = stream.cores[static_cast<std::size_t>(c)];
    if (core.pc >= program.size()) return;
    const Instruction& inst = program[core.pc];
    if (inst.opcode == Opcode::kRecv &&
        !channels.has_message(inst.peer, c, inst.tag)) {
      parked[static_cast<std::size_t>(c)] = true;
      return;
    }
    parked[static_cast<std::size_t>(c)] = false;
    if (!queued[static_cast<std::size_t>(c)]) {
      ready_queue.push({next_ready(c), c});
      queued[static_cast<std::size_t>(c)] = true;
    }
  };

  for (int c = 0; c < cores; ++c) enqueue(c);

  while (!ready_queue.empty()) {
    const auto [key, c] = ready_queue.top();
    ready_queue.pop();
    queued[static_cast<std::size_t>(c)] = false;
    CoreState& core = cs[static_cast<std::size_t>(c)];
    const auto& program = stream.cores[static_cast<std::size_t>(c)];
    if (core.pc >= program.size()) continue;
    const Instruction& inst = program[core.pc];
    execute_inst(c, inst);
    ++core.pc;
    if (inst.opcode == Opcode::kSend &&
        parked[static_cast<std::size_t>(inst.peer)]) {
      enqueue(inst.peer);
    }
    enqueue(c);
  }

  for (int c = 0; c < cores; ++c) {
    const CoreState& core = cs[static_cast<std::size_t>(c)];
    const auto& program = stream.cores[static_cast<std::size_t>(c)];
    if (core.pc < program.size()) {
      const Instruction& inst = program[core.pc];
      std::ostringstream oss;
      oss << "deadlock: core " << c << " blocked at instruction " << core.pc
          << "/" << program.size() << " (" << to_string(inst.opcode)
          << " from core " << inst.peer << ", node " << inst.node << "); "
          << channels.in_flight() << " messages in flight";
      throw SimulationError(oss.str());
    }
  }

  // --- Aggregate (identical order to Simulator::run) -----------------------
  report.core_finish.resize(static_cast<std::size_t>(cores), 0);
  report.core_busy.resize(static_cast<std::size_t>(cores), 0);
  double usage_sum = 0.0;
  for (int c = 0; c < cores; ++c) {
    CoreState& core = cs[static_cast<std::size_t>(c)];
    const bool active = !stream.cores[static_cast<std::size_t>(c)].empty();
    report.core_finish[static_cast<std::size_t>(c)] = core.last_event;
    report.core_busy[static_cast<std::size_t>(c)] = core.busy;
    report.makespan = std::max(report.makespan, core.last_event);
    if (active) {
      ++report.active_cores;
      usage_sum += core.usage.finish(core.last_event);
      report.peak_local_memory_bytes =
          std::max(report.peak_local_memory_bytes,
                   static_cast<std::int64_t>(core.usage.peak()));
    }
  }
  if (report.active_cores > 0) {
    report.avg_local_memory_bytes = usage_sum / report.active_cores;
  }

  // Spill traffic estimated by the schedule-time memory planner.
  for (std::int64_t spill : stream.spill_bytes) {
    report.spill_traffic_bytes += spill;
  }
  report.global_traffic_bytes += report.spill_traffic_bytes;

  // Leakage: HT cores leak over their own busy window (independent pipeline
  // stages); LL cores stay powered until the inference completes.
  Picojoules leakage = 0.0;
  for (int c = 0; c < cores; ++c) {
    if (stream.cores[static_cast<std::size_t>(c)].empty()) continue;
    const Picoseconds active_time =
        stream.mode == PipelineMode::kHighThroughput
            ? report.core_finish[static_cast<std::size_t>(c)]
            : report.makespan;
    leakage += energy.core_leakage_energy(1, active_time);
  }
  leakage += energy.chip_leakage_energy(hw_.chip_count(), report.makespan);
  report.leakage_energy = leakage;

  return report;
}

}  // namespace

PIMCOMP_REGISTER_BACKEND("sim", [] { return std::make_unique<SimBackend>(); });

}  // namespace pimcomp
