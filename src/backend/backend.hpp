#ifndef PIMCOMP_BACKEND_BACKEND_HPP
#define PIMCOMP_BACKEND_BACKEND_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "arch/hardware_config.hpp"
#include "backend/instruction_stream.hpp"
#include "core/compiler.hpp"
#include "sim/sim_report.hpp"

namespace pimcomp {

/// Everything a backend may consult while lowering one compiled scenario.
/// Pointers are non-owning and valid for the duration of lower() only.
struct LowerInput {
  const Schedule* schedule = nullptr;
  const MappingSolution* solution = nullptr;
  const Graph* graph = nullptr;
  const HardwareConfig* hardware = nullptr;
  const CompileOptions* options = nullptr;

  /// The session's mapping cache key for this compilation; stamped into the
  /// emitted stream as its fingerprint binding (0 when the caller has no
  /// cache identity, e.g. the low-level Compiler without a session).
  std::uint64_t mapping_key = 0;
};

/// A compilation backend: lowers a compiled (Schedule, MappingSolution,
/// Graph, HardwareConfig) into the versioned InstructionStream artifact,
/// and — when it models a target — executes such a stream. Implementations
/// self-register with BackendRegistry from their own translation unit
/// (PIMCOMP_REGISTER_BACKEND), mirroring the mapper/scheduler pattern, so
/// adding a backend never touches src/core/.
class Backend {
 public:
  virtual ~Backend() = default;

  /// Strategy name for reports ("isa-json", "sim", ...).
  virtual std::string name() const = 0;

  /// Lowers one compiled scenario. The result always validate()s and is
  /// bound to input.mapping_key.
  virtual InstructionStream lower(const LowerInput& input) const = 0;

  /// True when execute() is implemented (the `sim` backend); pure emitters
  /// return false and execute() throws ConfigError.
  virtual bool can_execute() const { return false; }

  /// Executes a lowered stream against a hardware model and reports the
  /// measurements. Default: unsupported.
  virtual SimReport execute(const InstructionStream& stream,
                            const HardwareConfig& hw) const;
};

/// String-keyed factory of backends ("isa-json", "sim", ...).
class BackendRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Backend>()>;

  /// Registers a factory under `key`; returns true (static-init friendly).
  static bool add(const std::string& key, Factory factory);

  /// Instantiates the backend registered under `key`; throws ConfigError
  /// for unknown keys, listing what is registered.
  static std::unique_ptr<Backend> create(const std::string& key);

  static bool contains(const std::string& key);

  /// Registered keys, sorted (the CLI's --list-backends).
  static std::vector<std::string> keys();
};

#define PIMCOMP_BACKEND_CONCAT_INNER(a, b) a##b
#define PIMCOMP_BACKEND_CONCAT(a, b) PIMCOMP_BACKEND_CONCAT_INNER(a, b)

/// Self-registration hook: one invocation at namespace scope in the
/// backend's own .cpp registers it for the whole program.
#define PIMCOMP_REGISTER_BACKEND(key, factory)                      \
  [[maybe_unused]] static const bool PIMCOMP_BACKEND_CONCAT(        \
      pimcomp_backend_registered_, __COUNTER__) =                   \
      ::pimcomp::BackendRegistry::add(key, factory)

}  // namespace pimcomp

#endif  // PIMCOMP_BACKEND_BACKEND_HPP
