// The reference emitter: lowers a compiled scenario into the canonical
// instruction-stream artifact, verbatim and losslessly. Every other backend
// is measured against this emission (the golden files of
// tests/test_backend.cpp and the JSON schema of
// scripts/isa_artifact_schema.json describe exactly what it produces).

#include "backend/backend.hpp"
#include "common/error.hpp"

namespace pimcomp {

namespace {

class IsaJsonBackend : public Backend {
 public:
  std::string name() const override { return "isa-json"; }

  InstructionStream lower(const LowerInput& input) const override {
    PIMCOMP_CHECK(input.schedule != nullptr && input.options != nullptr,
                  "isa-json backend needs a schedule and options");
    return InstructionStream::from_schedule(
        *input.schedule, input.options->mode,
        input.options->parallelism_degree, name(), input.mapping_key);
  }
};

}  // namespace

PIMCOMP_REGISTER_BACKEND("isa-json", [] {
  return std::make_unique<IsaJsonBackend>();
});

}  // namespace pimcomp
