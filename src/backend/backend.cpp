#include "backend/backend.hpp"

#include <utility>

#include "common/error.hpp"
#include "core/registry.hpp"

namespace pimcomp {

namespace {

detail::RegistryStore<BackendRegistry::Factory>& backend_store() {
  // pimcomp-lint: internally-synchronized (RegistryStore owns a Mutex)
  static detail::RegistryStore<BackendRegistry::Factory> store;
  return store;
}

}  // namespace

SimReport Backend::execute(const InstructionStream& stream,
                           const HardwareConfig& hw) const {
  (void)stream;
  (void)hw;
  throw ConfigError("backend '" + name() +
                    "' emits artifacts but cannot execute them; use the "
                    "'sim' backend to run an instruction stream");
}

bool BackendRegistry::add(const std::string& key, Factory factory) {
  return backend_store().add("backend", key, std::move(factory));
}

std::unique_ptr<Backend> BackendRegistry::create(const std::string& key) {
  return backend_store().get("backend", key)();
}

bool BackendRegistry::contains(const std::string& key) {
  return backend_store().contains(key);
}

std::vector<std::string> BackendRegistry::keys() {
  return backend_store().keys();
}

}  // namespace pimcomp
