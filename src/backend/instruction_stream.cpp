#include "backend/instruction_stream.hpp"

#include <utility>

#include "cache/cache_store.hpp"

namespace pimcomp {

namespace {

/// FNV-1a over the canonical serialization (same constants as the session's
/// fingerprint helpers — the artifact identity must be stable across
/// processes and releases).
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a_bytes(std::uint64_t h, const char* data,
                          std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= kFnvPrime;
  }
  return h;
}

const char* mode_name(PipelineMode mode) {
  return mode == PipelineMode::kHighThroughput ? "ht" : "ll";
}

PipelineMode mode_from_name(const std::string& name) {
  if (name == "ht") return PipelineMode::kHighThroughput;
  if (name == "ll") return PipelineMode::kLowLatency;
  throw InstructionStreamError("instruction stream mode must be 'ht' or "
                               "'ll', got '" + name + "'");
}

/// One Instruction as a compact 10-tuple. Field order is part of the
/// schema — changing it requires a kIsaVersion bump:
///   [opcode, node, ag, window, bytes, elements, peer, tag, xbars,
///    local_usage]
Json instruction_to_json(const Instruction& inst) {
  Json row = Json::array();
  row.push_back(to_string(inst.opcode));
  row.push_back(static_cast<std::int64_t>(inst.node));
  row.push_back(static_cast<std::int64_t>(inst.ag));
  row.push_back(static_cast<std::int64_t>(inst.window));
  row.push_back(inst.bytes);
  row.push_back(inst.elements);
  row.push_back(static_cast<std::int64_t>(inst.peer));
  row.push_back(static_cast<std::int64_t>(inst.tag));
  row.push_back(static_cast<std::int64_t>(inst.xbars));
  row.push_back(inst.local_usage);
  return row;
}

Instruction instruction_from_json(const Json& row) {
  if (!row.is_array() || row.size() != 10) {
    throw InstructionStreamError("instruction row must be a 10-tuple");
  }
  Instruction inst;
  inst.opcode = opcode_from_string(row.at(std::size_t(0)).as_string());
  inst.node = static_cast<NodeId>(row.at(std::size_t(1)).as_int());
  inst.ag = static_cast<std::int32_t>(row.at(std::size_t(2)).as_int());
  inst.window = static_cast<std::int32_t>(row.at(std::size_t(3)).as_int());
  inst.bytes = row.at(std::size_t(4)).as_int();
  inst.elements = row.at(std::size_t(5)).as_int();
  inst.peer = static_cast<std::int32_t>(row.at(std::size_t(6)).as_int());
  inst.tag = static_cast<std::int32_t>(row.at(std::size_t(7)).as_int());
  inst.xbars = static_cast<std::int32_t>(row.at(std::size_t(8)).as_int());
  inst.local_usage = row.at(std::size_t(9)).as_int();
  return inst;
}

Json int64_array(const std::vector<std::int64_t>& values) {
  Json array = Json::array();
  for (std::int64_t v : values) array.push_back(v);
  return array;
}

std::vector<std::int64_t> int64_vector(const Json& array, const char* what) {
  if (!array.is_array()) {
    throw InstructionStreamError(std::string("instruction stream ") + what +
                                 " must be an array");
  }
  std::vector<std::int64_t> values;
  values.reserve(array.size());
  for (std::size_t i = 0; i < array.size(); ++i) {
    values.push_back(array.at(i).as_int());
  }
  return values;
}

}  // namespace

std::string to_string(Opcode opcode) {
  switch (opcode) {
    case Opcode::kMvm: return "MVM";
    case Opcode::kValu: return "VALU";
    case Opcode::kSend: return "SEND";
    case Opcode::kRecv: return "RECV";
    case Opcode::kLoad: return "LOAD";
    case Opcode::kStore: return "STORE";
  }
  return "UNKNOWN";
}

Opcode opcode_from_string(const std::string& mnemonic) {
  if (mnemonic == "MVM") return Opcode::kMvm;
  if (mnemonic == "VALU") return Opcode::kValu;
  if (mnemonic == "SEND") return Opcode::kSend;
  if (mnemonic == "RECV") return Opcode::kRecv;
  if (mnemonic == "LOAD") return Opcode::kLoad;
  if (mnemonic == "STORE") return Opcode::kStore;
  throw InstructionStreamError("unknown opcode mnemonic '" + mnemonic + "'");
}

Opcode opcode_from_op_kind(OpKind kind) {
  switch (kind) {
    case OpKind::kMvm: return Opcode::kMvm;
    case OpKind::kVfu: return Opcode::kValu;
    case OpKind::kCommSend: return Opcode::kSend;
    case OpKind::kCommRecv: return Opcode::kRecv;
    case OpKind::kLoadGlobal: return Opcode::kLoad;
    case OpKind::kStoreGlobal: return Opcode::kStore;
  }
  throw InstructionStreamError("unknown operation kind");
}

OpKind op_kind_from_opcode(Opcode opcode) {
  switch (opcode) {
    case Opcode::kMvm: return OpKind::kMvm;
    case Opcode::kValu: return OpKind::kVfu;
    case Opcode::kSend: return OpKind::kCommSend;
    case Opcode::kRecv: return OpKind::kCommRecv;
    case Opcode::kLoad: return OpKind::kLoadGlobal;
    case Opcode::kStore: return OpKind::kStoreGlobal;
  }
  throw InstructionStreamError("unknown opcode");
}

void InstructionStream::validate() const {
  if (backend.empty()) {
    throw InstructionStreamError("instruction stream has no backend name");
  }
  if (parallelism_degree < 1) {
    throw InstructionStreamError(
        "instruction stream parallelism degree must be >= 1");
  }
  if (ag_count < 0) {
    throw InstructionStreamError("instruction stream ag_count is negative");
  }
  const int cores_n = core_count();
  if (static_cast<int>(spill_bytes.size()) != cores_n ||
      static_cast<int>(peak_local_bytes.size()) != cores_n) {
    throw InstructionStreamError(
        "instruction stream per-core metadata does not match its core "
        "count (" + std::to_string(cores_n) + " cores, " +
        std::to_string(spill_bytes.size()) + " spill entries, " +
        std::to_string(peak_local_bytes.size()) + " peak entries)");
  }
  std::int64_t ops = 0;
  for (int c = 0; c < cores_n; ++c) {
    for (const Instruction& inst : cores[static_cast<std::size_t>(c)]) {
      ++ops;
      const bool is_comm =
          inst.opcode == Opcode::kSend || inst.opcode == Opcode::kRecv;
      if (inst.opcode == Opcode::kMvm) {
        if (inst.ag < 0 || inst.ag >= ag_count) {
          throw InstructionStreamError(
              "MVM on core " + std::to_string(c) +
              " references AG " + std::to_string(inst.ag) + " outside [0, " +
              std::to_string(ag_count) + ")");
        }
        if (inst.xbars < 0) {
          throw InstructionStreamError("MVM with negative crossbar count");
        }
      } else if (inst.ag < -1 || inst.ag >= ag_count) {
        throw InstructionStreamError(
            to_string(inst.opcode) + " on core " + std::to_string(c) +
            " waits on AG " + std::to_string(inst.ag) + " outside [-1, " +
            std::to_string(ag_count) + ")");
      }
      if (is_comm && (inst.peer < 0 || inst.peer >= cores_n)) {
        throw InstructionStreamError(
            to_string(inst.opcode) + " on core " + std::to_string(c) +
            " targets peer " + std::to_string(inst.peer) + " outside [0, " +
            std::to_string(cores_n) + ")");
      }
      if (inst.bytes < 0) {
        throw InstructionStreamError(to_string(inst.opcode) +
                                     " with negative payload bytes");
      }
      if (inst.elements < 0) {
        throw InstructionStreamError(to_string(inst.opcode) +
                                     " with negative element count");
      }
      if (inst.local_usage < -1) {
        throw InstructionStreamError(to_string(inst.opcode) +
                                     " with local usage below -1");
      }
    }
  }
  if (ops != total_ops) {
    throw InstructionStreamError(
        "instruction stream total_ops (" + std::to_string(total_ops) +
        ") disagrees with its own instruction lists (" +
        std::to_string(ops) + ")");
  }
}

Schedule InstructionStream::to_schedule() const {
  Schedule schedule;
  schedule.ag_count = ag_count;
  schedule.total_ops = total_ops;
  schedule.spill_bytes = spill_bytes;
  schedule.peak_local_bytes = peak_local_bytes;
  schedule.programs.reserve(cores.size());
  for (const std::vector<Instruction>& program : cores) {
    std::vector<Operation> ops;
    ops.reserve(program.size());
    for (const Instruction& inst : program) {
      Operation op;
      op.kind = op_kind_from_opcode(inst.opcode);
      op.node = inst.node;
      op.ag = inst.ag;
      op.window = inst.window;
      op.bytes = inst.bytes;
      op.elements = inst.elements;
      op.peer = inst.peer;
      op.tag = inst.tag;
      op.xbars = inst.xbars;
      op.local_usage = inst.local_usage;
      ops.push_back(op);
    }
    schedule.programs.push_back(std::move(ops));
  }
  return schedule;
}

InstructionStream InstructionStream::from_schedule(
    const Schedule& schedule, PipelineMode mode, int parallelism_degree,
    const std::string& backend, std::uint64_t mapping_key) {
  InstructionStream stream;
  stream.backend = backend;
  stream.mapping_key = mapping_key;
  stream.mode = mode;
  stream.parallelism_degree = parallelism_degree;
  stream.ag_count = schedule.ag_count;
  stream.total_ops = schedule.total_ops;
  stream.spill_bytes = schedule.spill_bytes;
  stream.peak_local_bytes = schedule.peak_local_bytes;
  stream.cores.reserve(schedule.programs.size());
  for (const std::vector<Operation>& program : schedule.programs) {
    std::vector<Instruction> insts;
    insts.reserve(program.size());
    for (const Operation& op : program) {
      Instruction inst;
      inst.opcode = opcode_from_op_kind(op.kind);
      inst.node = op.node;
      inst.ag = op.ag;
      inst.window = op.window;
      inst.bytes = op.bytes;
      inst.elements = op.elements;
      inst.peer = op.peer;
      inst.tag = op.tag;
      inst.xbars = op.xbars;
      inst.local_usage = op.local_usage;
      insts.push_back(inst);
    }
    stream.cores.push_back(std::move(insts));
  }
  stream.validate();
  return stream;
}

std::uint64_t InstructionStream::content_fingerprint() const {
  const std::string canonical = to_json().dump(-1);
  return fnv1a_bytes(kFnvOffset, canonical.data(), canonical.size());
}

Json InstructionStream::to_json() const {
  Json json = Json::object();
  // Envelope first: a self-describing artifact survives being moved
  // between caches, files and wire frames.
  json["isa"] = kIsaVersion;
  json["backend"] = backend;
  json["mapping_key"] = cache_key_hex(mapping_key);
  json["mode"] = mode_name(mode);
  json["parallelism"] = parallelism_degree;
  json["ag_count"] = ag_count;
  json["total_ops"] = total_ops;
  json["spill_bytes"] = int64_array(spill_bytes);
  json["peak_local_bytes"] = int64_array(peak_local_bytes);
  Json cores_json = Json::array();
  for (const std::vector<Instruction>& program : cores) {
    Json rows = Json::array();
    for (const Instruction& inst : program) {
      rows.push_back(instruction_to_json(inst));
    }
    cores_json.push_back(std::move(rows));
  }
  json["cores"] = std::move(cores_json);
  return json;
}

InstructionStream InstructionStream::from_json(const Json& json) {
  if (!json.is_object()) {
    throw InstructionStreamError("instruction stream must be a JSON object");
  }
  const int isa = static_cast<int>(json.get("isa", -1));
  if (isa != kIsaVersion) {
    throw InstructionStreamError(
        "instruction stream ISA version mismatch (artifact " +
        std::to_string(isa) + ", this build " + std::to_string(kIsaVersion) +
        ")");
  }
  InstructionStream stream;
  stream.backend = json.get("backend", std::string());
  const std::string key_hex = json.get("mapping_key", std::string());
  const std::optional<std::uint64_t> key = cache_key_from_hex(key_hex);
  if (!key.has_value()) {
    throw InstructionStreamError(
        "instruction stream mapping_key '" + key_hex +
        "' is not a 16-digit hex fingerprint");
  }
  stream.mapping_key = *key;
  stream.mode = mode_from_name(json.get("mode", std::string()));
  stream.parallelism_degree = static_cast<int>(json.get("parallelism", 0));
  stream.ag_count = static_cast<int>(json.at("ag_count").as_int());
  stream.total_ops = json.at("total_ops").as_int();
  stream.spill_bytes = int64_vector(json.at("spill_bytes"), "spill_bytes");
  stream.peak_local_bytes =
      int64_vector(json.at("peak_local_bytes"), "peak_local_bytes");
  const Json& cores_json = json.at("cores");
  if (!cores_json.is_array()) {
    throw InstructionStreamError("instruction stream cores must be an array");
  }
  stream.cores.reserve(cores_json.size());
  for (std::size_t c = 0; c < cores_json.size(); ++c) {
    const Json& rows = cores_json.at(c);
    if (!rows.is_array()) {
      throw InstructionStreamError(
          "instruction stream core program must be an array");
    }
    std::vector<Instruction> program;
    program.reserve(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      program.push_back(instruction_from_json(rows.at(i)));
    }
    stream.cores.push_back(std::move(program));
  }
  stream.validate();
  return stream;
}

InstructionStream InstructionStream::from_json(
    const Json& json, std::uint64_t expected_mapping_key) {
  InstructionStream stream = from_json(json);
  if (stream.mapping_key != expected_mapping_key) {
    throw InstructionStreamError(
        "instruction stream is bound to mapping " +
        cache_key_hex(stream.mapping_key) +
        ", not the requesting compilation's " +
        cache_key_hex(expected_mapping_key) +
        " — refusing to serve a lowered program for a different schedule");
  }
  return stream;
}

}  // namespace pimcomp
