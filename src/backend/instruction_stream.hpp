#ifndef PIMCOMP_BACKEND_INSTRUCTION_STREAM_HPP
#define PIMCOMP_BACKEND_INSTRUCTION_STREAM_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "mapping/mapper.hpp"
#include "schedule/operation.hpp"

namespace pimcomp {

/// Version of the instruction-stream artifact schema. Any change to the
/// JSON layout, the opcode set, or the per-row field order requires bumping
/// this (and the pinned goldens in tests/test_backend.cpp) in one commit —
/// the same discipline kCacheSchemaVersion enforces for mapping artifacts.
inline constexpr int kIsaVersion = 1;

/// The abstract PIM ISA the backends emit. One opcode per execution-model
/// operation class (paper §III-B); the mnemonics are the wire names.
enum class Opcode : std::uint8_t {
  kMvm,    ///< "MVM"   one MVM on one Array Group's crossbars
  kValu,   ///< "VALU"  vector work on the VFU lanes
  kSend,   ///< "SEND"  enqueue a message toward a peer core (non-blocking)
  kRecv,   ///< "RECV"  dequeue a message from a peer core (blocking)
  kLoad,   ///< "LOAD"  global memory -> local scratchpad
  kStore,  ///< "STORE" local scratchpad -> global memory
};

/// Wire mnemonic ("MVM", "VALU", ...).
std::string to_string(Opcode opcode);
Opcode opcode_from_string(const std::string& mnemonic);

/// Lossless opcode <-> scheduler operation-kind mapping.
Opcode opcode_from_op_kind(OpKind kind);
OpKind op_kind_from_opcode(Opcode opcode);

/// One lowered instruction. Field-for-field lossless against
/// schedule/operation.hpp's Operation so the `sim` backend can replay the
/// exact arithmetic of the legacy simulator:
///  * `ag` is the wait handle — the Array Group whose most recent MVM must
///    complete before this instruction starts (for MVM: the AG it runs on);
///  * `tag` is the logical channel class for SEND/RECV pairing;
///  * `local_usage` is the absolute scratchpad occupancy after the
///    instruction, or -1 when unchanged (operand-buffer accounting).
struct Instruction {
  Opcode opcode = Opcode::kValu;
  NodeId node = -1;
  std::int32_t ag = -1;
  std::int32_t window = -1;
  std::int64_t bytes = 0;
  std::int64_t elements = 0;
  std::int32_t peer = -1;
  std::int32_t tag = 0;
  std::int32_t xbars = 0;
  std::int64_t local_usage = -1;
};

/// Raised when an instruction-stream artifact is malformed, violates an
/// invariant, or is bound to a different compilation than the requester's.
class InstructionStreamError : public Error {
 public:
  explicit InstructionStreamError(const std::string& message)
      : Error(message) {}
};

/// A whole lowered program: per-core instruction lists plus the facts an
/// executor needs to size its state, bound to the compilation that produced
/// it by `mapping_key` (the session's mapping cache key). The JSON form is
/// the exchange artifact of docs/backends.md — versioned, fingerprinted and
/// schema-checked, following src/cache/artifact.{hpp,cpp}.
struct InstructionStream {
  std::string backend;             ///< BackendRegistry key that emitted it
  std::uint64_t mapping_key = 0;   ///< fingerprint binding (0 = unbound)
  PipelineMode mode = PipelineMode::kHighThroughput;
  int parallelism_degree = 20;     ///< MVM issue-bandwidth limit per core
  int ag_count = 0;                ///< AG instances (wait-handle domain)
  std::int64_t total_ops = 0;
  std::vector<std::vector<Instruction>> cores;   ///< per-core programs
  std::vector<std::int64_t> spill_bytes;         ///< per-core spill traffic
  std::vector<std::int64_t> peak_local_bytes;    ///< per-core peak occupancy

  int core_count() const { return static_cast<int>(cores.size()); }

  /// Proves the stream's internal invariants (counts consistent, wait
  /// handles in range, comm peers valid, payloads non-negative). Throws
  /// InstructionStreamError; from_json always re-proves on parse.
  void validate() const;

  /// Lossless conversion back to the scheduler's representation (tests and
  /// legacy consumers).
  Schedule to_schedule() const;

  /// Lowers a schedule verbatim — the reference emission every backend
  /// builds on.
  static InstructionStream from_schedule(const Schedule& schedule,
                                         PipelineMode mode,
                                         int parallelism_degree,
                                         const std::string& backend,
                                         std::uint64_t mapping_key);

  /// Content hash of the canonical (compact) JSON serialization — the
  /// artifact identity pinned by the golden tests and reported by tooling.
  std::uint64_t content_fingerprint() const;

  Json to_json() const;

  /// Parses and validate()s. The `expected_mapping_key` overload
  /// additionally rejects a stream bound to a different compilation —
  /// serving a lowered program for the wrong schedule is the cross-process
  /// equivalent of a cache collision.
  static InstructionStream from_json(const Json& json);
  static InstructionStream from_json(const Json& json,
                                     std::uint64_t expected_mapping_key);
};

}  // namespace pimcomp

#endif  // PIMCOMP_BACKEND_INSTRUCTION_STREAM_HPP
