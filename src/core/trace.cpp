#include "core/trace.hpp"

#include <utility>

#include "common/error.hpp"

namespace pimcomp {

PipelineEvent PipelineEvent::stage_begin(const StageInfo& info) {
  PipelineEvent event;
  event.kind = Kind::kStageBegin;
  event.name = info.stage;
  event.scenario = info.scenario;
  event.scenario_index = info.scenario_index;
  event.tag = info.tag;
  return event;
}

PipelineEvent PipelineEvent::stage_end(const StageInfo& info) {
  PipelineEvent event;
  event.kind = Kind::kStageEnd;
  event.name = info.stage;
  event.scenario = info.scenario;
  event.scenario_index = info.scenario_index;
  event.seconds = info.seconds;
  event.tag = info.tag;
  return event;
}

namespace {

bool is_cache_event(PipelineEvent::Kind kind) {
  return kind == PipelineEvent::Kind::kCacheHit ||
         kind == PipelineEvent::Kind::kCacheStore;
}

PipelineEvent cache_event_common(PipelineEvent::Kind kind,
                                 const CacheEvent& cache_event) {
  PipelineEvent event;
  event.kind = kind;
  event.name = cache_event.cache;
  event.scenario = cache_event.scenario;
  event.scenario_index = cache_event.scenario_index;
  event.hits = cache_event.hits;
  event.tag = cache_event.tag;
  event.source = cache_event.source;
  return event;
}

}  // namespace

PipelineEvent PipelineEvent::cache_hit(const CacheEvent& cache_event) {
  return cache_event_common(Kind::kCacheHit, cache_event);
}

PipelineEvent PipelineEvent::cache_store(const CacheEvent& cache_event) {
  return cache_event_common(Kind::kCacheStore, cache_event);
}

std::string to_string(PipelineEvent::Kind kind) {
  switch (kind) {
    case PipelineEvent::Kind::kStageBegin: return "stage_begin";
    case PipelineEvent::Kind::kStageEnd: return "stage_end";
    case PipelineEvent::Kind::kCacheHit: return "cache_hit";
    case PipelineEvent::Kind::kCacheStore: return "cache_store";
  }
  return "unknown";
}

PipelineEvent::Kind event_kind_from_string(const std::string& s) {
  if (s == "stage_begin") return PipelineEvent::Kind::kStageBegin;
  if (s == "stage_end") return PipelineEvent::Kind::kStageEnd;
  if (s == "cache_hit") return PipelineEvent::Kind::kCacheHit;
  if (s == "cache_store") return PipelineEvent::Kind::kCacheStore;
  throw ConfigError("unknown pipeline event kind '" + s + "'");
}

Json event_to_json(const PipelineEvent& event) {
  Json json = Json::object();
  json["event"] = to_string(event.kind);
  json[is_cache_event(event.kind) ? "cache" : "stage"] = event.name;
  json["scenario"] = event.scenario;
  json["index"] = event.scenario_index;
  if (event.kind == PipelineEvent::Kind::kStageEnd) {
    json["seconds"] = event.seconds;
  }
  if (is_cache_event(event.kind)) {
    json["hits"] = static_cast<std::int64_t>(event.hits);
    // Tier attribution; absent on events recorded by builds predating the
    // two-tier cache (and on stage events), so readers use get-with-default.
    if (!event.source.empty()) json["source"] = event.source;
  }
  // Untagged events keep the pre-job JSON shape byte for byte.
  if (event.tag != 0) json["job"] = static_cast<std::int64_t>(event.tag);
  return json;
}

PipelineEvent event_from_json(const Json& json) {
  PipelineEvent event;
  event.kind = event_kind_from_string(json.at("event").as_string());
  event.name =
      json.get(is_cache_event(event.kind) ? "cache" : "stage", std::string());
  event.scenario = json.get("scenario", std::string());
  event.scenario_index = json.get("index", -1);
  event.seconds = json.get("seconds", 0.0);
  event.hits = static_cast<std::uint64_t>(
      json.get("hits", static_cast<std::int64_t>(0)));
  event.tag = static_cast<std::uint64_t>(
      json.get("job", static_cast<std::int64_t>(0)));
  event.source = json.get("source", std::string());
  return event;
}

void EventBridge::on_stage_begin(const StageInfo& info) {
  if (sink_) sink_(PipelineEvent::stage_begin(info));
}

void EventBridge::on_stage_end(const StageInfo& info) {
  if (sink_) sink_(PipelineEvent::stage_end(info));
}

void EventBridge::on_cache_hit(const CacheEvent& event) {
  if (sink_) sink_(PipelineEvent::cache_hit(event));
}

void EventBridge::on_cache_store(const CacheEvent& event) {
  if (sink_) sink_(PipelineEvent::cache_store(event));
}

TraceRecorder::TraceRecorder() : start_(std::chrono::steady_clock::now()) {}

void TraceRecorder::on_stage_begin(const StageInfo& info) {
  record(PipelineEvent::stage_begin(info));
}

void TraceRecorder::on_stage_end(const StageInfo& info) {
  record(PipelineEvent::stage_end(info));
}

void TraceRecorder::on_cache_hit(const CacheEvent& event) {
  record(PipelineEvent::cache_hit(event));
}

void TraceRecorder::on_cache_store(const CacheEvent& event) {
  record(PipelineEvent::cache_store(event));
}

void TraceRecorder::record(const PipelineEvent& event) {
  events_.push_back(event);
  at_seconds_.push_back(seconds_since(start_));
}

Json TraceRecorder::to_json() const {
  Json events = Json::array();
  for (std::size_t i = 0; i < events_.size(); ++i) {
    Json row = event_to_json(events_[i]);
    row["at_s"] = at_seconds_[i];
    events.push_back(std::move(row));
  }
  Json root = Json::object();
  root["events"] = std::move(events);
  return root;
}

}  // namespace pimcomp
