#include "core/compiler.hpp"

#include <chrono>

#include "common/error.hpp"
#include "mapping/fitness.hpp"
#include "mapping/greedy_mapper.hpp"
#include "mapping/puma_mapper.hpp"
#include "schedule/ht_scheduler.hpp"
#include "schedule/ll_scheduler.hpp"

namespace pimcomp {

std::string to_string(MapperKind kind) {
  switch (kind) {
    case MapperKind::kGenetic: return "pimcomp-ga";
    case MapperKind::kPumaLike: return "puma-like";
    case MapperKind::kGreedy: return "greedy-norep";
  }
  return "unknown";
}

namespace {

double seconds_since(
    const std::chrono::steady_clock::time_point& start) {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now - start).count();
}

}  // namespace

Compiler::Compiler(Graph graph, HardwareConfig hw)
    : graph_(std::move(graph)), hw_(hw) {
  if (!graph_.finalized()) graph_.finalize();
  hw_.validate();
}

CompileResult Compiler::compile(const CompileOptions& options) const {
  // Stage 1: node partitioning.
  auto t0 = std::chrono::steady_clock::now();
  auto workload = std::make_shared<const Workload>(graph_, hw_);
  const double partition_time = seconds_since(t0);

  // Stages 2+3: weight replicating + core mapping.
  MapperOptions mapper_options;
  mapper_options.mode = options.mode;
  mapper_options.parallelism_degree = options.parallelism_degree;
  mapper_options.max_nodes_per_core = options.max_nodes_per_core;
  mapper_options.seed = options.seed;

  t0 = std::chrono::steady_clock::now();
  GaStats ga_stats;
  std::string mapper_name;
  MappingSolution solution = [&]() -> MappingSolution {
    switch (options.mapper) {
      case MapperKind::kGenetic: {
        GeneticMapper mapper(options.ga);
        MappingSolution s = mapper.map(*workload, mapper_options);
        ga_stats = mapper.last_stats();
        mapper_name = mapper.name();
        return s;
      }
      case MapperKind::kPumaLike: {
        PumaMapper mapper;
        mapper_name = mapper.name();
        return mapper.map(*workload, mapper_options);
      }
      case MapperKind::kGreedy: {
        GreedyMapper mapper;
        mapper_name = mapper.name();
        return mapper.map(*workload, mapper_options);
      }
    }
    throw ConfigError("unknown mapper kind");
  }();
  const double mapping_time = seconds_since(t0);

  // Mapper objective value on the final solution (Fig 5 / Fig 6 estimates).
  const FitnessParams params =
      FitnessParams::from(hw_, options.parallelism_degree);
  double fitness = 0.0;
  if (options.mode == PipelineMode::kHighThroughput) {
    fitness = ht_fitness(solution, params);
  } else {
    fitness = LLFitnessContext(*workload).evaluate(solution, params);
  }

  // Stage 4: dataflow scheduling.
  t0 = std::chrono::steady_clock::now();
  Schedule schedule;
  if (options.mode == PipelineMode::kHighThroughput) {
    HtScheduleOptions ht;
    ht.memory_policy = options.memory_policy;
    ht.flush_windows = options.ht_flush_windows;
    schedule = schedule_ht(solution, ht);
  } else {
    LlScheduleOptions ll;
    ll.memory_policy = options.memory_policy;
    schedule = schedule_ll(solution, ll);
  }
  const double scheduling_time = seconds_since(t0);

  CompileResult result{std::move(workload), std::move(solution),
                       std::move(schedule), options,
                       StageTimes{partition_time, mapping_time,
                                  scheduling_time},
                       fitness, std::move(mapper_name), std::move(ga_stats)};
  return result;
}

SimReport Compiler::simulate(const CompileResult& result) const {
  SimOptions sim_options;
  sim_options.parallelism_degree = result.options.parallelism_degree;
  sim_options.mode = result.options.mode;
  return Simulator(hw_, sim_options).run(result.schedule);
}

HardwareConfig fit_core_count(const Graph& graph, HardwareConfig hw,
                              double headroom) {
  // One throwaway workload to measure the requirement; retry with the
  // recommended count.
  HardwareConfig probe = hw;
  // Use a huge core count so the capacity check always passes.
  probe.core_count = 1 << 20;
  Graph copy = graph;
  if (!copy.finalized()) copy.finalize();
  const Workload workload(copy, probe);
  hw.core_count = workload.recommended_core_count(headroom);
  return hw;
}

}  // namespace pimcomp
