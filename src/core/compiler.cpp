#include "core/compiler.hpp"

#include "common/error.hpp"
#include "core/pipeline.hpp"
#include "core/session.hpp"

namespace pimcomp {

std::string to_string(MapperKind kind) {
  switch (kind) {
    case MapperKind::kGenetic: return "pimcomp-ga";
    case MapperKind::kPumaLike: return "puma-like";
    case MapperKind::kGreedy: return "greedy-norep";
  }
  return "unknown";
}

std::string registry_key(MapperKind kind) {
  switch (kind) {
    case MapperKind::kGenetic: return "ga";
    case MapperKind::kPumaLike: return "puma";
    case MapperKind::kGreedy: return "greedy";
  }
  throw ConfigError("unknown mapper kind");
}

std::string CompileOptions::scheduler_key() const {
  if (!scheduler.empty()) return scheduler;
  return mode == PipelineMode::kHighThroughput ? "ht" : "ll";
}

Compiler::Compiler(Graph graph, HardwareConfig hw)
    : graph_(std::move(graph)), hw_(hw) {
  if (!graph_.finalized()) graph_.finalize();
  hw_.validate();
}

CompileResult Compiler::compile(const CompileOptions& options,
                                PipelineObserver* observer) const {
  PipelineContext ctx;
  ctx.graph = &graph_;
  ctx.hardware = &hw_;
  ctx.options = &options;
  if (!options.backend.empty()) {
    // Bind the lowered stream to the same cache identity a CompilerSession
    // would file this compilation under, so artifacts emitted through the
    // low-level Compiler and through a cached session are interchangeable.
    ctx.stream_binding = combine_fingerprints(
        combine_fingerprints(fingerprint(graph_), fingerprint(hw_)),
        fingerprint(options));
  }
  return run_pipeline(std::move(ctx), observer);
}

SimReport Compiler::simulate(const CompileResult& result) const {
  SimOptions sim_options;
  sim_options.parallelism_degree = result.options.parallelism_degree;
  sim_options.mode = result.options.mode;
  return Simulator(hw_, sim_options).run(result.schedule);
}

HardwareConfig fit_core_count(const Graph& graph, HardwareConfig hw,
                              double headroom) {
  hw.validate();
  std::int64_t min_xbars = 0;
  if (graph.finalized()) {
    min_xbars = Workload::min_xbars_for(graph, hw);
  } else {
    Graph copy = graph;
    copy.finalize();
    min_xbars = Workload::min_xbars_for(copy, hw);
  }
  hw.core_count = Workload::recommend_cores(min_xbars, hw, headroom);
  return hw;
}

}  // namespace pimcomp
