#include "core/compile_report.hpp"

#include <sstream>

#include "common/string_util.hpp"

namespace pimcomp {

std::string describe(const CompileResult& result) {
  const Workload& workload = *result.workload;
  const Graph& graph = workload.graph();
  std::ostringstream oss;
  oss << "PIMCOMP compilation of '" << graph.name() << "'\n"
      << "  mode: " << to_string(result.options.mode) << ", parallelism "
      << result.options.parallelism_degree << ", memory policy "
      << to_string(result.options.memory_policy) << "\n"
      << "  mapper: " << result.mapper_name << ", estimated objective "
      << format_double(result.estimated_fitness / kPsPerUs, 2) << " us\n"
      << "  crossbar nodes: " << workload.partition_count() << " of "
      << graph.node_count() << " nodes; min crossbars "
      << workload.min_xbars_required() << " / "
      << workload.total_xbars_available() << " available\n";

  std::int64_t used = result.solution.total_xbars_used();
  oss << "  crossbars used: " << used << " ("
      << format_double(100.0 * static_cast<double>(used) /
                           static_cast<double>(
                               workload.total_xbars_available()),
                       1)
      << "%)\n"
      << "  replication: ";
  for (const NodePartition& p : workload.partitions()) {
    oss << result.solution.replication(p.node);
    if (p.node != workload.partitions().back().node) oss << ",";
  }
  oss << "\n  schedule: " << result.schedule.total_ops << " ops over "
      << result.schedule.core_count() << " cores ("
      << result.schedule.count(OpKind::kMvm) << " MVM, "
      << result.schedule.count(OpKind::kVfu) << " VFU, "
      << result.schedule.count(OpKind::kCommSend) << " msgs)\n"
      << "  stage times (s): partition "
      << format_double(result.stage_times.partitioning, 3) << ", map "
      << format_double(result.stage_times.mapping, 3) << ", schedule "
      << format_double(result.stage_times.scheduling, 3) << ", total "
      << format_double(result.stage_times.total(), 3) << "\n";
  return oss.str();
}

Json compile_result_to_json(const CompileResult& result) {
  const Workload& workload = *result.workload;
  Json root = Json::object();
  root["model"] = workload.graph().name();
  root["mode"] = to_string(result.options.mode);
  root["mapper"] = result.mapper_name;
  root["parallelism"] = result.options.parallelism_degree;
  root["memory_policy"] = to_string(result.options.memory_policy);
  root["estimated_fitness_us"] = result.estimated_fitness / kPsPerUs;
  root["total_ops"] = result.schedule.total_ops;
  root["mvm_ops"] = result.schedule.count(OpKind::kMvm);
  root["cores"] = result.schedule.core_count();

  Json replication = Json::array();
  for (const NodePartition& p : workload.partitions()) {
    replication.push_back(result.solution.replication(p.node));
  }
  root["replication"] = std::move(replication);

  Json times = Json::object();
  times["partitioning_s"] = result.stage_times.partitioning;
  times["mapping_s"] = result.stage_times.mapping;
  times["scheduling_s"] = result.stage_times.scheduling;
  times["lowering_s"] = result.stage_times.lowering;
  root["stage_times"] = std::move(times);
  return root;
}

Json sim_report_to_json(const SimReport& report) {
  Json root = Json::object();
  root["makespan_us"] = to_us(report.makespan);
  root["throughput_per_s"] = report.throughput_per_sec();
  root["active_cores"] = report.active_cores;
  Json energy = Json::object();
  energy["dynamic_uj"] = to_uj(report.dynamic_energy.total());
  energy["mvm_uj"] = to_uj(report.dynamic_energy.mvm);
  energy["vfu_uj"] = to_uj(report.dynamic_energy.vfu);
  energy["local_uj"] = to_uj(report.dynamic_energy.local_memory);
  energy["global_uj"] = to_uj(report.dynamic_energy.global_memory);
  energy["noc_uj"] = to_uj(report.dynamic_energy.noc);
  energy["leakage_uj"] = to_uj(report.leakage_energy);
  root["energy"] = std::move(energy);
  root["avg_local_kb"] = report.avg_local_memory_bytes / 1024.0;
  root["peak_local_kb"] =
      static_cast<double>(report.peak_local_memory_bytes) / 1024.0;
  root["global_traffic_kb"] =
      static_cast<double>(report.global_traffic_bytes) / 1024.0;
  root["mvm_ops"] = report.mvm_ops;
  root["comm_messages"] = report.comm_messages;
  return root;
}

}  // namespace pimcomp
