#ifndef PIMCOMP_CORE_SESSION_HPP
#define PIMCOMP_CORE_SESSION_HPP

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/compiler.hpp"
#include "core/pipeline.hpp"

namespace pimcomp {

/// Stable identity of a graph / hardware config, used to key the session's
/// workload cache. Two equal fingerprints partition identically.
std::uint64_t fingerprint(const Graph& graph);
std::uint64_t fingerprint(const HardwareConfig& hw);

/// Identity of one compilation request modulo its label: every
/// CompileOptions field participates (mode, strategy keys, GA
/// hyperparameters, seed, ...). Keys the session's mapping-result cache
/// together with the workload fingerprint.
std::uint64_t fingerprint(const CompileOptions& options);

/// Order-dependent mix of two fingerprints — the combinator behind every
/// session cache key and CompilerSession::fingerprint(). Exposed so other
/// layers keying on a (graph, hardware) identity (the compile server's
/// session registry) can never disagree with the session's own.
std::uint64_t combine_fingerprints(std::uint64_t a, std::uint64_t b);

/// One entry of a session batch: a label for reports/observers, the compile
/// options, and an optional hardware override for design-space sweeps
/// (std::nullopt = the session's default hardware).
struct Scenario {
  std::string label;
  CompileOptions options;
  std::optional<HardwareConfig> hardware;
};

/// Per-scenario result of a batch compile. Exactly one of `result` / `error`
/// is meaningful: a feasible scenario carries its CompileResult, an
/// infeasible or misconfigured one carries the failure's what() message
/// (CapacityError, ConfigError, ...) so one bad design point no longer
/// aborts a whole sweep.
struct ScenarioOutcome {
  std::string label;
  int index = -1;  ///< position in the batch (results keep enqueue order)
  std::optional<CompileResult> result;
  std::string error;

  bool ok() const { return result.has_value(); }
};

/// Batch compilation front-end over the pluggable pipeline. A session owns
/// one model and caches two layers:
///
///  1. the partitioned Workload per distinct hardware fingerprint, so an
///     N-scenario sweep runs node partitioning once instead of N times;
///  2. whole mapping results keyed by (workload fingerprint, options
///     fingerprint), so a sweep revisiting an identical configuration skips
///     the GA (and scheduling) entirely.
///
/// Batches fan out across a worker pool (set_jobs); scenarios are
/// independent (each compile owns its mapper and RNG), the caches are
/// mutex-guarded with once-per-fingerprint partitioning (the first scenario
/// of a fingerprint partitions, peers block until it publishes), and
/// observer callbacks are serialized. Results are bit-identical to the
/// sequential path — and to Compiler::compile() — at equal seed; the
/// session (like Compiler) must outlive the CompileResults it returns.
class CompilerSession {
 public:
  /// Takes ownership of the graph (finalizing it if needed); `hw` is the
  /// default hardware for scenarios without an override.
  CompilerSession(Graph graph, HardwareConfig hw);
  ~CompilerSession();  // out of line: ObserverGate is incomplete here

  CompilerSession(const CompilerSession&) = delete;
  CompilerSession& operator=(const CompilerSession&) = delete;

  const Graph& graph() const { return graph_; }
  const HardwareConfig& hardware() const { return hw_; }

  /// Identity of (graph, default hardware): the key scenarios without a
  /// hardware override cache under.
  std::uint64_t fingerprint() const;

  /// Observer receiving per-stage and cache-hit callbacks for every
  /// compilation this session runs (nullptr disables; not owned). Callbacks
  /// are serialized even when the batch runs parallel.
  void set_observer(PipelineObserver* observer);

  /// Worker threads compile_all() fans a batch out over. 1 (the default)
  /// compiles inline on the calling thread; 0 means one per hardware
  /// thread. Parallel batches return outcomes in enqueue order,
  /// bit-identical to the sequential ones at equal seeds.
  void set_jobs(int jobs);
  int jobs() const { return jobs_; }

  /// Queues a scenario; returns its index in the current batch. Safe to
  /// call from observer callbacks (follow-up scenarios join a later batch).
  int enqueue(Scenario scenario);
  int enqueue(CompileOptions options, std::string label = {});
  int pending() const;

  /// Compiles every queued scenario and clears the queue. Never throws for
  /// a scenario failure: each infeasible/misconfigured scenario yields an
  /// error outcome and the rest of the batch completes.
  std::vector<ScenarioOutcome> compile_all();

  /// Cache-aware single compilation against the session hardware. Unlike
  /// compile_all(), the single-scenario forms throw on failure.
  CompileResult compile(const CompileOptions& options);

  /// Cache-aware single compilation of one scenario. `index` is forwarded
  /// to observer callbacks (batch position; -1 for ad-hoc runs). Safe to
  /// call concurrently from several threads.
  CompileResult compile(const Scenario& scenario, int index = -1);

  /// Simulates a result at the hardware it was compiled for.
  SimReport simulate(const CompileResult& result) const;

  /// Distinct partitioned workloads currently cached (successful entries).
  std::size_t cached_workloads() const;
  /// Distinct mapping results currently cached.
  std::size_t cached_mappings() const;

  /// Session-lifetime cache hit counts (also surfaced per-hit through
  /// PipelineObserver::on_cache_hit).
  std::uint64_t workload_cache_hits() const { return workload_hits_; }
  std::uint64_t mapping_cache_hits() const { return mapping_hits_; }

 private:
  struct WorkloadEntry;
  class ObserverGate;

  /// Returns the cached workload for `key`, partitioning it (and publishing
  /// it for concurrently waiting peers) on first use. On the partitioning
  /// path `*partition_seconds` receives the stage duration; cache hits
  /// leave it at zero.
  std::shared_ptr<const Workload> resolve_workload(std::uint64_t key,
                                                   const HardwareConfig& hw,
                                                   const std::string& label,
                                                   int index,
                                                   double* partition_seconds);

  std::optional<CompileResult> find_mapping(std::uint64_t key) const;
  void store_mapping(std::uint64_t key, const CompileResult& result);
  void notify_cache_hit(const char* cache, const std::string& label,
                        int index, std::atomic<std::uint64_t>& counter);

  Graph graph_;
  HardwareConfig hw_;
  std::uint64_t graph_fingerprint_ = 0;
  int jobs_ = 1;

  // recursive_mutex: an observer callback may legally re-enter
  // session.compile() or a sequential compile_all() on its own thread (the
  // pre-parallel observer path permitted it); cross-thread serialization
  // still holds. Two limits, both because the callback's thread holds this
  // mutex while other workers may need it: nested compiles from a callback
  // are unsupported while a parallel batch is in flight (the nested call
  // could wait on a WorkloadEntry whose owner is blocked on this mutex),
  // and a *parallel* compile_all() from a callback is never supported.
  // enqueue() is always safe.
  PipelineObserver* observer_ = nullptr;      // guarded by observer_mutex_
  std::unique_ptr<ObserverGate> gate_;        // serializing forwarder
  mutable std::recursive_mutex observer_mutex_;

  std::vector<Scenario> queue_;               // guarded by queue_mutex_
  mutable std::mutex queue_mutex_;

  std::unordered_map<std::uint64_t, std::shared_ptr<WorkloadEntry>>
      workloads_;                             // guarded by workload_mutex_
  mutable std::mutex workload_mutex_;

  // Bounded FIFO cache (kMaxCachedMappings): a long-lived session sweeping
  // many distinct configurations must not retain every result forever.
  std::unordered_map<std::uint64_t, std::shared_ptr<const CompileResult>>
      mappings_;                              // guarded by mapping_mutex_
  std::deque<std::uint64_t> mapping_order_;   // insertion order, same guard
  mutable std::mutex mapping_mutex_;

  std::atomic<std::uint64_t> workload_hits_{0};
  std::atomic<std::uint64_t> mapping_hits_{0};
};

}  // namespace pimcomp

#endif  // PIMCOMP_CORE_SESSION_HPP
