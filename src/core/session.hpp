#ifndef PIMCOMP_CORE_SESSION_HPP
#define PIMCOMP_CORE_SESSION_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/compiler.hpp"
#include "core/pipeline.hpp"

namespace pimcomp {

/// Stable identity of a graph / hardware config, used to key the session's
/// workload cache. Two equal fingerprints partition identically.
std::uint64_t fingerprint(const Graph& graph);
std::uint64_t fingerprint(const HardwareConfig& hw);

/// One entry of a session batch: a label for reports/observers, the compile
/// options, and an optional hardware override for design-space sweeps
/// (std::nullopt = the session's default hardware).
struct Scenario {
  std::string label;
  CompileOptions options;
  std::optional<HardwareConfig> hardware;
};

/// Batch compilation front-end over the pluggable pipeline. A session owns
/// one model and caches the partitioned Workload per distinct hardware
/// fingerprint, so an N-scenario sweep over mappers, modes, parallelism
/// degrees or memory policies runs node partitioning once instead of N
/// times. Results are bit-identical to Compiler::compile() at equal seed;
/// the session (like Compiler) must outlive the CompileResults it returns.
class CompilerSession {
 public:
  /// Takes ownership of the graph (finalizing it if needed); `hw` is the
  /// default hardware for scenarios without an override.
  CompilerSession(Graph graph, HardwareConfig hw);

  CompilerSession(const CompilerSession&) = delete;
  CompilerSession& operator=(const CompilerSession&) = delete;

  const Graph& graph() const { return graph_; }
  const HardwareConfig& hardware() const { return hw_; }

  /// Identity of (graph, default hardware): the key scenarios without a
  /// hardware override cache under.
  std::uint64_t fingerprint() const;

  /// Observer receiving per-stage callbacks for every compilation this
  /// session runs (nullptr disables; not owned).
  void set_observer(PipelineObserver* observer) { observer_ = observer; }

  /// Queues a scenario; returns its index in the current batch.
  int enqueue(Scenario scenario);
  int enqueue(CompileOptions options, std::string label = {});
  int pending() const { return static_cast<int>(queue_.size()); }

  /// Compiles every queued scenario in order and clears the queue.
  std::vector<CompileResult> compile_all();

  /// Cache-aware single compilation against the session hardware.
  CompileResult compile(const CompileOptions& options);

  /// Cache-aware single compilation of one scenario. `index` is forwarded
  /// to observer callbacks (batch position; -1 for ad-hoc runs).
  CompileResult compile(const Scenario& scenario, int index = -1);

  /// Simulates a result at the hardware it was compiled for.
  SimReport simulate(const CompileResult& result) const;

  /// Distinct partitioned workloads currently cached.
  std::size_t cached_workloads() const { return workloads_.size(); }

 private:
  std::shared_ptr<const Workload> find_cached(std::uint64_t key) const;

  Graph graph_;
  HardwareConfig hw_;
  std::uint64_t graph_fingerprint_ = 0;
  PipelineObserver* observer_ = nullptr;
  std::vector<Scenario> queue_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const Workload>>
      workloads_;
};

}  // namespace pimcomp

#endif  // PIMCOMP_CORE_SESSION_HPP
