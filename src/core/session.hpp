#ifndef PIMCOMP_CORE_SESSION_HPP
#define PIMCOMP_CORE_SESSION_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/cache_config.hpp"
#include "cache/cache_store.hpp"
#include "common/cancel.hpp"
#include "common/thread_annotations.hpp"
#include "core/compiler.hpp"
#include "core/pipeline.hpp"

namespace pimcomp {

class ThreadPool;      // common/thread_pool.hpp
class InMemoryStore;   // cache/memory_store.hpp
class DiskStore;       // cache/disk_store.hpp

/// Stable identity of a graph / hardware config, used to key the session's
/// workload cache. Two equal fingerprints partition identically.
std::uint64_t fingerprint(const Graph& graph);
std::uint64_t fingerprint(const HardwareConfig& hw);

/// Identity of one compilation request modulo its label: every
/// CompileOptions field participates (mode, strategy keys, GA
/// hyperparameters, seed, ...). Keys the session's mapping-result cache
/// together with the workload fingerprint.
std::uint64_t fingerprint(const CompileOptions& options);

/// Order-dependent mix of two fingerprints — the combinator behind every
/// session cache key and CompilerSession::fingerprint(). Exposed so other
/// layers keying on a (graph, hardware) identity (the compile server's
/// session registry) can never disagree with the session's own.
std::uint64_t combine_fingerprints(std::uint64_t a, std::uint64_t b);

/// One entry of a session batch: a label for reports/observers, the compile
/// options, and an optional hardware override for design-space sweeps
/// (std::nullopt = the session's default hardware).
struct Scenario {
  std::string label;
  CompileOptions options;
  std::optional<HardwareConfig> hardware;
};

/// Machine-readable classification of a scenario failure, alongside the
/// human-readable message. Stable across releases (it travels the serve
/// protocol as a string), so clients branch on it instead of string-matching
/// what() text.
enum class ErrorKind {
  kNone,       ///< the scenario succeeded
  kCapacity,   ///< CapacityError: the design point cannot hold the model
  kConfig,     ///< ConfigError: bad options / unknown strategy key
  kCancelled,  ///< CancelledError: the job's owner cancelled it
  kDeadline,   ///< the job's client deadline passed before it started
  kInternal,   ///< anything else (allocation failure, logic error, ...)
};

/// Wire names: "" / "capacity" / "config" / "cancelled" / "deadline" /
/// "internal".
std::string to_string(ErrorKind kind);
/// Inverse of to_string; unknown strings map to kInternal (a newer peer may
/// speak kinds this build does not know — still a failure, still typed).
ErrorKind error_kind_from_string(const std::string& s);
/// Classifies a caught scenario failure by exception type.
ErrorKind error_kind_of(const std::exception& e);

/// Per-scenario result of a batch compile. Exactly one of `result` / `error`
/// is meaningful: a feasible scenario carries its CompileResult, an
/// infeasible, misconfigured, or cancelled one carries the failure's what()
/// message plus its ErrorKind classification, so one bad design point no
/// longer aborts a whole sweep and clients never parse error text.
struct ScenarioOutcome {
  std::string label;
  int index = -1;  ///< position in the batch (results keep enqueue order)
  std::optional<CompileResult> result;
  std::string error;
  ErrorKind error_kind = ErrorKind::kNone;

  bool ok() const { return result.has_value(); }
  bool cancelled() const { return error_kind == ErrorKind::kCancelled; }
};

/// Lifecycle of a submitted job. kDone covers success *and* compile
/// failures (the outcome's error_kind tells them apart); kCancelled is the
/// terminal state of a job whose cancellation was observed.
enum class JobStatus { kQueued, kRunning, kDone, kCancelled };

/// Per-job knobs for CompilerSession::submit().
struct JobOptions {
  /// Batch position recorded in the outcome and observer callbacks (-1 for
  /// ad-hoc jobs; compile_all() fills it with the enqueue position).
  int index = -1;

  /// Queue priority: higher runs sooner, ties are FIFO. Default 0.
  int priority = 0;

  /// Opaque caller tag forwarded verbatim into every observer callback this
  /// job produces (StageInfo/CacheEvent/PipelineEvent::tag). How a consumer
  /// sharing one session across independent callers — the compile server —
  /// attributes the merged event stream. 0 = untagged.
  std::uint64_t tag = 0;

  /// Client deadline: a job whose deadline has already passed when a worker
  /// picks it up is dropped *before any stage runs*, with an error outcome
  /// of kind ErrorKind::kDeadline — compiling into a result nobody is
  /// waiting for helps no one and starves live requests. A job that
  /// *started* in time runs to completion. Default (epoch) = no deadline.
  std::chrono::steady_clock::time_point deadline{};

  /// Invoked exactly once, on the worker thread, right after the job turns
  /// terminal (after wait() is already unblocked). Runs outside all session
  /// locks; it may submit follow-up jobs but must not block on this job.
  std::function<void(const ScenarioOutcome&)> on_complete;
};

/// Handle to one asynchronous compilation: a value type sharing state with
/// the session's job queue, so it stays valid — and its outcome reachable —
/// even after the session that spawned it is destroyed (destruction cancels
/// and finalizes every outstanding job first).
class CompileJob {
 public:
  /// Opaque shared job state (defined in session.cpp).
  struct State;

  /// An empty handle; valid() is false and every other accessor throws.
  CompileJob() = default;

  bool valid() const { return state_ != nullptr; }

  /// Non-blocking status probe.
  JobStatus poll() const;

  /// True once the job reached kDone or kCancelled.
  bool done() const;

  /// Blocks until the job is terminal and returns its outcome (idempotent —
  /// call as often as you like). A session worker waiting on a job of its
  /// own pool (a completion callback or observer submitting follow-up
  /// work) runs other queued jobs inline instead of blocking, so nested
  /// waits are deadlock-free on a one-worker session. One caveat on
  /// multi-worker sessions: do not wait, from inside a job's callbacks, on
  /// a follow-up with the *same options and hardware* as a job still
  /// running — the in-flight mapping dedup would make the follow-up wait
  /// on the very job hosting the callback. The returned reference lives as
  /// long as some CompileJob handle does.
  const ScenarioOutcome& wait() const;

  /// Requests cooperative cancellation. A still-queued job is finalized as
  /// cancelled immediately; a running one aborts at its next stage or GA
  /// generation boundary. Returns false when the job was already terminal
  /// (too late — the result stands).
  bool cancel() const;

  const std::string& label() const;
  int index() const;
  std::uint64_t tag() const;

 private:
  friend class CompilerSession;
  explicit CompileJob(std::shared_ptr<State> state) : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

/// Asynchronous compilation front-end over the pluggable pipeline. A session
/// owns one model, a resident worker pool (set_jobs), and two cache layers
/// built on the pluggable stores of src/cache/:
///
///  1. the partitioned Workload per distinct hardware fingerprint (memory
///     tier only — a Workload points into the session's graph and is cheap
///     to recompute), so an N-scenario sweep runs node partitioning once
///     instead of N times;
///  2. whole mapping results keyed by (workload fingerprint, options
///     fingerprint), so a sweep revisiting an identical configuration skips
///     the GA (and scheduling) entirely. With a CacheConfig whose dir is
///     set, this layer is a two-tier read-through/write-through store:
///     in-memory in front of a disk-persisted artifact store, so identical
///     compilations are reused across processes and daemon restarts. A
///     disk-tier hit re-partitions the (cheap) workload, revalidates the
///     artifact against it, and returns a result byte-identical to an
///     in-memory hit; a corrupt or foreign artifact is a miss, never an
///     error.
///
/// The primitive is submit(): every scenario becomes a CompileJob on a
/// shared priority-aware queue drained by resident workers (they survive
/// across batches), with poll()/wait()/cancel() and a completion callback.
/// compile_all() survives as a thin submit-all + wait-all wrapper: outcomes
/// keep enqueue order and are bit-identical to the pre-job sequential path —
/// and to Compiler::compile() — at equal seeds. Scenarios are independent
/// (each compile owns its mapper and RNG), the caches are mutex-guarded with
/// once-per-fingerprint partitioning (the first scenario of a fingerprint
/// partitions, peers block until it publishes), and observer callbacks are
/// serialized. The session (like Compiler) must outlive the CompileResults
/// it returns; CompileJob handles themselves may outlive it.
class CompilerSession {
 public:
  /// Takes ownership of the graph (finalizing it if needed); `hw` is the
  /// default hardware for scenarios without an override. `cache` configures
  /// the persistent mapping-artifact tier; the default (no directory) keeps
  /// the session memory-only, byte-identical to its historical behavior.
  CompilerSession(Graph graph, HardwareConfig hw, CacheConfig cache = {});

  /// Cancels every outstanding job, finalizes it (waiters and completion
  /// callbacks observe a cancelled outcome), and joins the workers before
  /// returning. CompileJob handles held by callers stay valid afterwards.
  ~CompilerSession();

  CompilerSession(const CompilerSession&) = delete;
  CompilerSession& operator=(const CompilerSession&) = delete;

  const Graph& graph() const { return graph_; }
  const HardwareConfig& hardware() const { return hw_; }

  /// Identity of (graph, default hardware): the key scenarios without a
  /// hardware override cache under.
  std::uint64_t fingerprint() const;

  /// Observer receiving per-stage and cache-hit callbacks for every
  /// compilation this session runs (nullptr disables; not owned). Callbacks
  /// are serialized even when jobs run in parallel.
  void set_observer(PipelineObserver* observer);

  /// Resident worker count jobs run on. 1 (the default) keeps one worker —
  /// submitted jobs still run asynchronously, strictly FIFO; 0 means one
  /// worker per hardware thread. Takes effect immediately when no jobs are
  /// outstanding, otherwise at the next submit() after the queue drains.
  /// Parallel batches return outcomes in enqueue order, bit-identical to
  /// the sequential ones at equal seeds.
  void set_jobs(int jobs);
  int jobs() const { return jobs_; }

  /// Submits one scenario as an asynchronous job on the shared queue and
  /// returns immediately. Failures (infeasible point, bad options,
  /// cancellation) are reported through the job's outcome, never thrown.
  /// Safe from any thread, including observer callbacks and completion
  /// callbacks of other jobs.
  CompileJob submit(Scenario scenario, JobOptions options = {});
  CompileJob submit(CompileOptions options, std::string label = {},
                    JobOptions job = {});

  /// Jobs submitted but not yet terminal.
  std::size_t outstanding_jobs() const;

  /// Requests cancellation of every outstanding job; returns how many were
  /// actually cancelled (already-terminal jobs don't count). The jobs
  /// finalize asynchronously; destruction or wait() observes them.
  std::size_t cancel_all_jobs();

  /// Blocks until no job is queued or running. (Jobs submitted concurrently
  /// with the wait may extend it.)
  void wait_jobs_idle();

  /// Queues a scenario for the next compile_all(); returns its index in the
  /// current batch. Safe to call from observer callbacks (follow-up
  /// scenarios join a later batch).
  int enqueue(Scenario scenario);
  int enqueue(CompileOptions options, std::string label = {});
  int pending() const;

  /// Compatibility wrapper over the job API: submits every queued scenario
  /// (clearing the queue) and waits for all of them. Outcomes keep enqueue
  /// order; a scenario failure never throws — each infeasible or
  /// misconfigured scenario yields an error outcome and the rest of the
  /// batch completes.
  std::vector<ScenarioOutcome> compile_all();

  /// Cache-aware single compilation against the session hardware, run
  /// synchronously on the calling thread (not through the job queue).
  /// Unlike the job API, the single-scenario forms throw on failure.
  CompileResult compile(const CompileOptions& options);

  /// Cache-aware single compilation of one scenario. `index` is forwarded
  /// to observer callbacks (batch position; -1 for ad-hoc runs). Safe to
  /// call concurrently from several threads.
  CompileResult compile(const Scenario& scenario, int index = -1);

  /// Simulates a result at the hardware it was compiled for.
  SimReport simulate(const CompileResult& result) const;

  /// The persistent-cache configuration this session was built with.
  const CacheConfig& cache_config() const { return cache_config_; }

  /// Distinct partitioned workloads currently cached (successful entries).
  std::size_t cached_workloads() const;
  /// Distinct mapping results currently cached in the memory tier.
  std::size_t cached_mappings() const;

  /// Session-lifetime cache hit counts (also surfaced per-hit through
  /// PipelineObserver::on_cache_hit). Mapping hits count every tier;
  /// mapping_disk_hits() / mapping_remote_hits() isolate the persistent
  /// and peer tiers' shares.
  std::uint64_t workload_cache_hits() const { return workload_hits_; }
  std::uint64_t mapping_cache_hits() const { return mapping_hits_; }
  std::uint64_t mapping_disk_hits() const { return mapping_disk_hits_; }
  std::uint64_t mapping_remote_hits() const { return mapping_remote_hits_; }
  /// Freshly computed mapping results written into the cache (also
  /// surfaced per-store through PipelineObserver::on_cache_store).
  std::uint64_t mapping_cache_stores() const { return mapping_stores_; }

  /// Per-tier (name, counters) rows of the mapping store, in lookup order:
  /// always "memory", then "disk" / "remote" as configured. The daemon's
  /// stats request and `pimcomp_cli cache stats` render these.
  std::vector<std::pair<const char*, CacheStoreStats>> mapping_tier_stats()
      const;

 private:
  struct WorkloadClaim;
  struct MappingClaim;
  class ObserverGate;

  /// The full-context compile every job and public compile() funnels into:
  /// `tag` flows to observer callbacks, `cancel` (nullable) is polled at
  /// stage boundaries and inside the GA.
  CompileResult compile_scenario(const Scenario& scenario, int index,
                                 std::uint64_t tag, const CancelToken* cancel);

  /// Creates (or, when idle and resized, re-creates) the resident pool.
  void ensure_pool_locked() PIMCOMP_REQUIRES(job_mutex_);

  /// Executes one job on a worker (or a helping waiter): runs the compile,
  /// classifies failures, finalizes the state, fires the callback.
  void run_job(const std::shared_ptr<CompileJob::State>& state);

  /// Returns the cached workload for `key`, partitioning it (and publishing
  /// it for concurrently waiting peers) on first use. On the partitioning
  /// path `*partition_seconds` receives the stage duration; cache hits
  /// leave it at zero.
  std::shared_ptr<const Workload> resolve_workload(std::uint64_t key,
                                                   const HardwareConfig& hw,
                                                   const std::string& label,
                                                   int index, std::uint64_t tag,
                                                   double* partition_seconds);

  /// Turns a mapping-store hit into a usable CompileResult. A memory-tier
  /// hit copies the decoded result (zeroed stage times, exactly the
  /// historical behavior); a disk-tier hit resolves the workload,
  /// revalidates the artifact against it, promotes the decoded result into
  /// the memory tier, and fires a "disk"-sourced hit event. Returns
  /// std::nullopt — after evicting the offending entry — when the artifact
  /// cannot be trusted, in which case the caller computes.
  std::optional<CompileResult> adopt_mapping_hit(
      CacheHit hit, const Scenario& scenario, const HardwareConfig& hw,
      int index, std::uint64_t tag, std::uint64_t workload_key,
      std::uint64_t mapping_key);

  /// Publishes a freshly computed result: decoded into the memory tier,
  /// encoded artifact into the disk tier when one is configured, one
  /// on_cache_store event attributed to the deepest tier that took it.
  void store_mapping(std::uint64_t key, std::uint64_t workload_key,
                     const CompileResult& result, const std::string& label,
                     int index, std::uint64_t tag);
  /// Retires an in-flight mapping claim and wakes its waiting peers.
  void release_mapping_claim(std::uint64_t key,
                             const std::shared_ptr<MappingClaim>& claim);
  void notify_cache_hit(const char* cache, const std::string& label, int index,
                        std::uint64_t tag, std::atomic<std::uint64_t>& counter,
                        const char* source);
  void notify_cache_store(const char* cache, const std::string& label,
                          int index, std::uint64_t tag, const char* source);

  Graph graph_;
  HardwareConfig hw_;
  std::uint64_t graph_fingerprint_ = 0;
  int jobs_ = 1;

  // RecursiveMutex: an observer callback may legally re-enter
  // session.compile() — or submit and wait on follow-up jobs — on its own
  // worker thread; cross-thread serialization still holds. Nested compiles
  // from a callback remain unsupported while jobs run on several workers
  // (the nested call could wait on a WorkloadClaim whose owner is blocked
  // on this mutex). enqueue() and submit() are always safe.
  PipelineObserver* observer_ PIMCOMP_GUARDED_BY(observer_mutex_) = nullptr;
  std::unique_ptr<ObserverGate> gate_;        // serializing forwarder
  mutable RecursiveMutex observer_mutex_;

  // Resident job workers plus the registry destruction/cancel_all walk.
  std::unique_ptr<ThreadPool> pool_ PIMCOMP_GUARDED_BY(job_mutex_);
  std::vector<std::weak_ptr<CompileJob::State>> job_registry_
      PIMCOMP_GUARDED_BY(job_mutex_);
  /// set by ~CompilerSession
  bool shutting_down_ PIMCOMP_GUARDED_BY(job_mutex_) = false;
  mutable Mutex job_mutex_;
  std::atomic<std::size_t> outstanding_jobs_{0};

  std::vector<Scenario> queue_ PIMCOMP_GUARDED_BY(queue_mutex_);
  mutable Mutex queue_mutex_;

  // Workload cache: completed partitions live in workload_store_ (decoded
  // Workloads, memory tier only); in-flight claims coordinate
  // once-per-fingerprint partitioning. A claim that settled with a
  // *deterministic* failure (CapacityError/ConfigError) stays in the map as
  // the negative cache — every retry would fail identically.
  std::unique_ptr<InMemoryStore> workload_store_;
  std::unordered_map<std::uint64_t, std::shared_ptr<WorkloadClaim>>
      workload_claims_ PIMCOMP_GUARDED_BY(workload_mutex_);
  mutable Mutex workload_mutex_;

  // Mapping cache: a bounded-FIFO memory tier (kMaxCachedMappings — a
  // long-lived session sweeping many distinct configurations must not
  // retain every result forever), composed with a disk tier into a
  // TieredStore when cache_config_ enables one. The raw tier pointers are
  // stable aliases into mapping_store_ for stats/attribution.
  CacheConfig cache_config_;
  std::unique_ptr<CacheStore> mapping_store_;
  InMemoryStore* mapping_memory_ = nullptr;        // always valid
  DiskStore* mapping_disk_ = nullptr;              // nullptr when disabled
  // The remote tier is held as the CacheStore interface (only stats() is
  // read here): the concrete type lives in src/fleet/ behind the
  // cache/remote_tier.hpp factory seam.
  CacheStore* mapping_remote_ = nullptr;           // nullptr without peers
  // In-flight dedup: concurrent identical jobs (same mapping key) wait for
  // the first one instead of mapping twice — the second then reads the
  // cache and reports a mapping cache hit, deterministically.
  std::unordered_map<std::uint64_t, std::shared_ptr<MappingClaim>>
      inflight_mappings_ PIMCOMP_GUARDED_BY(mapping_mutex_);
  mutable Mutex mapping_mutex_;

  std::atomic<std::uint64_t> workload_hits_{0};
  std::atomic<std::uint64_t> mapping_hits_{0};
  std::atomic<std::uint64_t> mapping_disk_hits_{0};
  std::atomic<std::uint64_t> mapping_remote_hits_{0};
  std::atomic<std::uint64_t> mapping_stores_{0};
};

}  // namespace pimcomp

#endif  // PIMCOMP_CORE_SESSION_HPP
