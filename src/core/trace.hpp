#ifndef PIMCOMP_CORE_TRACE_HPP
#define PIMCOMP_CORE_TRACE_HPP

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "core/pipeline.hpp"

namespace pimcomp {

/// One PipelineObserver callback reified as data. This is the shared event
/// currency of every observer consumer: the compile server streams these to
/// clients (src/serve/protocol.hpp wraps them with a request id) and the
/// CLI's --trace flag writes them as a JSON timeline — both with the same
/// JSON shape, so a trace file and a server event stream are diffable.
struct PipelineEvent {
  enum class Kind { kStageBegin, kStageEnd, kCacheHit, kCacheStore };

  Kind kind = Kind::kStageBegin;
  std::string name;          ///< stage name (stage events) or cache name
  std::string scenario;      ///< scenario label ("" when single-shot)
  int scenario_index = -1;   ///< position in the session batch
  double seconds = 0.0;      ///< stage duration (kStageEnd only)
  std::uint64_t hits = 0;    ///< session-lifetime hit/store count (cache
                             ///< events only)
  std::uint64_t tag = 0;     ///< job tag (JobOptions::tag; 0 = untagged —
                             ///< serialized as "job" only when set)
  std::string source;        ///< cache tier ("memory"/"disk"; cache events
                             ///< only — serialized as "source" when set)

  static PipelineEvent stage_begin(const StageInfo& info);
  static PipelineEvent stage_end(const StageInfo& info);
  static PipelineEvent cache_hit(const CacheEvent& event);
  static PipelineEvent cache_store(const CacheEvent& event);
};

/// Wire names of the kinds ("stage_begin", "stage_end", "cache_hit",
/// "cache_store").
std::string to_string(PipelineEvent::Kind kind);
PipelineEvent::Kind event_kind_from_string(const std::string& s);

/// JSON shape (the serving protocol's "event" payload and one --trace row):
///   {"event": "stage_end", "stage": "mapping", "scenario": "P=20",
///    "index": 1, "seconds": 0.42}
/// Cache hits/stores carry "cache" instead of "stage" plus a "hits" count
/// and the serving tier as "source".
Json event_to_json(const PipelineEvent& event);
PipelineEvent event_from_json(const Json& json);

/// Bridges PipelineObserver callbacks into a single event sink, so consumers
/// (socket writers, trace files, progress bars) handle one callback instead
/// of three. The sink runs on the pipeline's thread under the session's
/// observer serialization, exactly like a raw observer.
class EventBridge : public PipelineObserver {
 public:
  using Sink = std::function<void(const PipelineEvent&)>;

  explicit EventBridge(Sink sink) : sink_(std::move(sink)) {}

  void on_stage_begin(const StageInfo& info) override;
  void on_stage_end(const StageInfo& info) override;
  void on_cache_hit(const CacheEvent& event) override;
  void on_cache_store(const CacheEvent& event) override;

 private:
  Sink sink_;
};

/// Collects a timeline of events with wall-clock offsets from construction.
/// Install as a session/compiler observer (local runs) or feed received
/// server events through record() (remote runs); to_json() is the --trace
/// file format:
///   {"events": [{"at_s": 0.0012, "event": "stage_begin", ...}, ...]}
class TraceRecorder : public PipelineObserver {
 public:
  TraceRecorder();

  void on_stage_begin(const StageInfo& info) override;
  void on_stage_end(const StageInfo& info) override;
  void on_cache_hit(const CacheEvent& event) override;
  void on_cache_store(const CacheEvent& event) override;

  /// Appends an already-reified event (e.g. one streamed from a compile
  /// server), stamped at the current wall-clock offset.
  void record(const PipelineEvent& event);

  std::size_t size() const { return events_.size(); }
  const std::vector<PipelineEvent>& events() const { return events_; }

  Json to_json() const;

 private:
  std::chrono::steady_clock::time_point start_;
  std::vector<PipelineEvent> events_;
  std::vector<double> at_seconds_;  ///< parallel to events_
};

}  // namespace pimcomp

#endif  // PIMCOMP_CORE_TRACE_HPP
