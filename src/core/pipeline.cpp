#include "core/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

// pimcomp-layer-exempt: the generic stage loop resolves the lowering stage
// through BackendRegistry's interface header only; concrete backends stay
// above core and register themselves.
#include "backend/backend.hpp"
#include "common/error.hpp"
#include "core/registry.hpp"

namespace pimcomp {

namespace {

// The registry plumbing itself (ordered map behind a Meyers singleton,
// static-init-safe conflict recording) lives in core/registry.hpp so
// BackendRegistry (src/backend/) shares it verbatim.

detail::RegistryStore<MapperRegistry::Factory>& mapper_store() {
  // pimcomp-lint: internally-synchronized (RegistryStore owns a Mutex)
  static detail::RegistryStore<MapperRegistry::Factory> store;
  return store;
}

detail::RegistryStore<SchedulerRegistry::Factory>& scheduler_store() {
  // pimcomp-lint: internally-synchronized (RegistryStore owns a Mutex)
  static detail::RegistryStore<SchedulerRegistry::Factory> store;
  return store;
}

// ---------------------------------------------------------------------------
// Built-in stages.
// ---------------------------------------------------------------------------

/// Stage 1: node partitioning (paper §IV-B).
class PartitionStage : public Stage {
 public:
  std::string name() const override { return stage_names::kPartitioning; }

  void run(PipelineContext& ctx) override {
    PIMCOMP_CHECK(ctx.graph != nullptr && ctx.hardware != nullptr,
                  "partitioning stage needs a graph and hardware config");
    ctx.workload =
        std::make_shared<const Workload>(*ctx.graph, *ctx.hardware);
  }
};

/// Stages 2+3: weight replicating + core mapping through the registered
/// strategy, plus the mode's objective estimate on the final solution.
class MappingStage : public Stage {
 public:
  MappingStage(std::unique_ptr<Mapper> mapper,
               std::shared_ptr<const Scheduler> scheduler)
      : mapper_(std::move(mapper)), scheduler_(std::move(scheduler)) {}

  std::string name() const override { return stage_names::kMapping; }

  void run(PipelineContext& ctx) override {
    PIMCOMP_CHECK(ctx.workload != nullptr,
                  "mapping stage needs a partitioned workload");
    const CompileOptions& options = *ctx.options;

    MapperOptions mapper_options;
    mapper_options.mode = options.mode;
    mapper_options.parallelism_degree = options.parallelism_degree;
    mapper_options.max_nodes_per_core = options.max_nodes_per_core;
    mapper_options.seed = options.seed;
    mapper_options.cancel = ctx.cancel;

    ctx.solution = mapper_->map(*ctx.workload, mapper_options);
    ctx.mapper_name = mapper_->name();
    if (const GaStats* stats = mapper_->convergence()) ctx.ga_stats = *stats;

    const FitnessParams params = FitnessParams::from(
        ctx.workload->hardware(), options.parallelism_degree);
    ctx.fitness =
        scheduler_->estimate_fitness(*ctx.workload, *ctx.solution, params);
  }

 private:
  std::unique_ptr<Mapper> mapper_;
  std::shared_ptr<const Scheduler> scheduler_;
};

/// Stage 4: dataflow scheduling through the registered generator.
class ScheduleStage : public Stage {
 public:
  explicit ScheduleStage(std::shared_ptr<const Scheduler> scheduler)
      : scheduler_(std::move(scheduler)) {}

  std::string name() const override { return stage_names::kScheduling; }

  void run(PipelineContext& ctx) override {
    PIMCOMP_CHECK(ctx.solution.has_value(),
                  "scheduling stage needs a mapping solution");
    ctx.schedule = scheduler_->build(*ctx.solution, *ctx.options);
  }

 private:
  std::shared_ptr<const Scheduler> scheduler_;
};

/// Stage 5 (optional): lower the schedule into the instruction-stream
/// artifact through the registered backend.
class LoweringStage : public Stage {
 public:
  explicit LoweringStage(std::unique_ptr<Backend> backend)
      : backend_(std::move(backend)) {}

  std::string name() const override { return stage_names::kLowering; }

  void run(PipelineContext& ctx) override {
    PIMCOMP_CHECK(ctx.solution.has_value(),
                  "lowering stage needs a mapping solution");
    LowerInput input;
    input.schedule = &ctx.schedule;
    input.solution = &*ctx.solution;
    input.graph = ctx.graph;
    input.hardware = ctx.hardware;
    input.options = ctx.options;
    input.mapping_key = ctx.stream_binding;
    ctx.stream = std::make_shared<const InstructionStream>(
        backend_->lower(input));
  }

 private:
  std::unique_ptr<Backend> backend_;
};

void record_stage_time(StageTimes& times, const std::string& stage,
                       double seconds) {
  if (stage == stage_names::kPartitioning) {
    times.partitioning += seconds;
  } else if (stage == stage_names::kMapping) {
    times.mapping += seconds;
  } else if (stage == stage_names::kScheduling) {
    times.scheduling += seconds;
  } else if (stage == stage_names::kLowering) {
    times.lowering += seconds;
  }
}

}  // namespace

bool MapperRegistry::add(const std::string& key, Factory factory) {
  return mapper_store().add("mapper", key, std::move(factory));
}

std::unique_ptr<Mapper> MapperRegistry::create(const std::string& key,
                                               const CompileOptions& options) {
  return mapper_store().get("mapper", key)(options);
}

bool MapperRegistry::contains(const std::string& key) {
  return mapper_store().contains(key);
}

std::vector<std::string> MapperRegistry::keys() {
  return mapper_store().keys();
}

bool SchedulerRegistry::add(const std::string& key, Factory factory) {
  return scheduler_store().add("scheduler", key, std::move(factory));
}

std::unique_ptr<Scheduler> SchedulerRegistry::create(const std::string& key) {
  return scheduler_store().get("scheduler", key)();
}

bool SchedulerRegistry::contains(const std::string& key) {
  return scheduler_store().contains(key);
}

std::vector<std::string> SchedulerRegistry::keys() {
  return scheduler_store().keys();
}

void validate_strategies(const CompileOptions& options) {
  // Resolve every key without invoking the factories: same error messages
  // as build_stages(), none of the instantiation cost.
  mapper_store().get("mapper", options.mapper);
  scheduler_store().get("scheduler", options.scheduler_key());
  if (!options.backend.empty()) {
    // BackendRegistry::create would instantiate; contains() + create() in
    // build_stages shares the same store, so reuse its error message by
    // resolving through the registry here.
    if (!BackendRegistry::contains(options.backend)) {
      BackendRegistry::create(options.backend);  // throws with the key list
    }
  }
}

std::vector<std::unique_ptr<Stage>> build_stages(const PipelineContext& ctx) {
  PIMCOMP_CHECK(ctx.options != nullptr, "pipeline context needs options");

  // Both registry keys are resolved up front so a bad key fails before any
  // stage — in particular before paying for node partitioning. The
  // scheduler is shared: the mapping stage uses its fitness estimator, the
  // scheduling stage its dataflow generator.
  std::unique_ptr<Mapper> mapper =
      MapperRegistry::create(ctx.options->mapper, *ctx.options);
  std::shared_ptr<const Scheduler> scheduler =
      SchedulerRegistry::create(ctx.options->scheduler_key());

  // The optional lowering backend resolves up front too: a bad --backend
  // key must fail before partitioning, like any other bad key.
  std::unique_ptr<Backend> backend;
  if (!ctx.options->backend.empty()) {
    backend = BackendRegistry::create(ctx.options->backend);
  }

  std::vector<std::unique_ptr<Stage>> stages;
  if (!ctx.workload) stages.push_back(std::make_unique<PartitionStage>());
  stages.push_back(
      std::make_unique<MappingStage>(std::move(mapper), scheduler));
  stages.push_back(std::make_unique<ScheduleStage>(scheduler));
  if (backend) {
    stages.push_back(std::make_unique<LoweringStage>(std::move(backend)));
  }
  return stages;
}

CompileResult run_pipeline(PipelineContext ctx, PipelineObserver* observer) {
  const std::vector<std::unique_ptr<Stage>> stages = build_stages(ctx);
  for (const std::unique_ptr<Stage>& stage : stages) {
    // Cooperative cancellation boundary: a cancelled compilation aborts
    // between stages (CancelledError) instead of burning minutes of mapping
    // it will throw away. The GA additionally polls between generations.
    if (ctx.cancel != nullptr) {
      ctx.cancel->throw_if_cancelled(stage->name().c_str());
    }
    StageInfo info{stage->name(), ctx.scenario_label, ctx.scenario_index, 0.0,
                   ctx.tag};
    if (observer != nullptr) observer->on_stage_begin(info);
    const auto t0 = std::chrono::steady_clock::now();
    try {
      stage->run(ctx);
    } catch (...) {
      // Keep begin/end callbacks paired even when a stage fails (capacity
      // overflow in partitioning is a routine, caught error).
      info.seconds = seconds_since(t0);
      if (observer != nullptr) observer->on_stage_end(info);
      throw;
    }
    info.seconds = seconds_since(t0);
    record_stage_time(ctx.stage_times, info.stage, info.seconds);
    if (observer != nullptr) observer->on_stage_end(info);
  }

  return CompileResult{std::move(ctx.workload), std::move(*ctx.solution),
                       std::move(ctx.schedule), *ctx.options, ctx.stage_times,
                       ctx.fitness, std::move(ctx.mapper_name),
                       std::move(ctx.ga_stats), std::move(ctx.stream)};
}

}  // namespace pimcomp
