#ifndef PIMCOMP_CORE_COMPILE_REPORT_HPP
#define PIMCOMP_CORE_COMPILE_REPORT_HPP

#include <string>

#include "common/json.hpp"
#include "core/compiler.hpp"
#include "sim/sim_report.hpp"

namespace pimcomp {

/// Human-readable compilation summary: model facts, replication decisions,
/// per-core utilization, op-stream statistics and stage timings.
std::string describe(const CompileResult& result);

/// Machine-readable variants for downstream tooling.
Json compile_result_to_json(const CompileResult& result);
Json sim_report_to_json(const SimReport& report);

}  // namespace pimcomp

#endif  // PIMCOMP_CORE_COMPILE_REPORT_HPP
