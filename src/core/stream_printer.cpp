#include "core/stream_printer.hpp"

#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace pimcomp {

std::string print_core_stream(const Schedule& schedule, const Graph& graph,
                              int core, int max_ops) {
  PIMCOMP_CHECK(core >= 0 && core < schedule.core_count(),
                "core index out of range");
  const auto& program = schedule.programs[static_cast<std::size_t>(core)];
  std::ostringstream oss;
  oss << "core " << core << " (" << program.size() << " ops)\n";
  const std::size_t limit =
      max_ops > 0 ? std::min<std::size_t>(program.size(),
                                          static_cast<std::size_t>(max_ops))
                  : program.size();
  for (std::size_t i = 0; i < limit; ++i) {
    const Operation& op = program[i];
    oss << "  " << std::setw(4) << std::setfill('0') << i << std::setfill(' ')
        << "  " << std::left << std::setw(6) << to_string(op.kind)
        << std::right;
    if (op.node >= 0 && op.node < graph.node_count()) {
      oss << " " << std::left << std::setw(16)
          << graph.node(op.node).name.substr(0, 16) << std::right;
    }
    switch (op.kind) {
      case OpKind::kMvm:
        oss << " ag=" << op.ag << " win=" << op.window << " " << op.xbars
            << " xbars";
        break;
      case OpKind::kVfu:
        oss << " " << op.elements << " elems";
        if (op.ag >= 0) oss << " [wait ag=" << op.ag << "]";
        break;
      case OpKind::kCommSend:
        oss << " -> core " << op.peer << " " << op.bytes << " B";
        if (op.tag != 0) oss << " tag=" << op.tag;
        break;
      case OpKind::kCommRecv:
        oss << " <- core " << op.peer << " " << op.bytes << " B";
        if (op.tag != 0) oss << " tag=" << op.tag;
        break;
      case OpKind::kLoadGlobal:
      case OpKind::kStoreGlobal:
        oss << " " << op.bytes << " B";
        break;
    }
    if (op.local_usage >= 0) oss << "  |mem " << op.local_usage << " B|";
    oss << '\n';
  }
  if (limit < program.size()) {
    oss << "  ... " << (program.size() - limit) << " more ops\n";
  }
  return oss.str();
}

std::string print_schedule_summary(const Schedule& schedule) {
  std::ostringstream oss;
  oss << "schedule: " << schedule.total_ops << " ops over "
      << schedule.core_count() << " cores\n"
      << "  MVM " << schedule.count(OpKind::kMvm) << ", VFU "
      << schedule.count(OpKind::kVfu) << ", SEND "
      << schedule.count(OpKind::kCommSend) << " ("
      << schedule.total_bytes(OpKind::kCommSend) / 1024 << " kB), LOAD "
      << schedule.total_bytes(OpKind::kLoadGlobal) / 1024 << " kB, STORE "
      << schedule.total_bytes(OpKind::kStoreGlobal) / 1024 << " kB\n";
  int busiest = 0;
  std::size_t busiest_ops = 0;
  for (int c = 0; c < schedule.core_count(); ++c) {
    const std::size_t ops =
        schedule.programs[static_cast<std::size_t>(c)].size();
    if (ops > busiest_ops) {
      busiest_ops = ops;
      busiest = c;
    }
  }
  oss << "  busiest core: " << busiest << " with " << busiest_ops << " ops\n";
  return oss.str();
}

}  // namespace pimcomp
