#ifndef PIMCOMP_CORE_REGISTRY_HPP
#define PIMCOMP_CORE_REGISTRY_HPP

#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/thread_annotations.hpp"

namespace pimcomp::detail {

/// Shared registry plumbing behind MapperRegistry / SchedulerRegistry /
/// BackendRegistry: an ordered map behind a Meyers singleton, so
/// registration from static initializers is order-independent and keys()
/// comes out sorted. Lookups are mutex-guarded: a parallel CompilerSession
/// resolves strategies from worker threads.
template <typename Factory>
class RegistryStore {
 public:
  bool add(const std::string& kind, const std::string& key, Factory factory) {
    MutexLock lock(mutex_);
    if (!factories_.emplace(key, std::move(factory)).second) {
      // add() runs from static initializers, where a throw terminates the
      // process before main() with no usable message. Record the conflict
      // instead; the first get()/keys() call reports it (first
      // registration wins and stays in effect).
      if (!conflicts_.empty()) conflicts_ += "; ";
      conflicts_ += kind + " '" + key + "' is already registered";
    }
    return true;
  }

  const Factory& get(const std::string& kind, const std::string& key) {
    MutexLock lock(mutex_);
    report_conflicts_locked();
    const auto it = factories_.find(key);
    if (it == factories_.end()) {
      std::ostringstream oss;
      oss << "unknown " << kind << " '" << key << "'; registered: ";
      bool first = true;
      for (const auto& [k, factory] : factories_) {
        oss << (first ? "" : ", ") << k;
        first = false;
      }
      throw ConfigError(oss.str());
    }
    // References into the map stay valid after unlock: entries are never
    // erased, and std::map never relocates nodes.
    return it->second;
  }

  bool contains(const std::string& key) const {
    MutexLock lock(mutex_);
    return factories_.count(key) != 0;
  }

  std::vector<std::string> keys() {
    MutexLock lock(mutex_);
    report_conflicts_locked();
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto& [key, factory] : factories_) out.push_back(key);
    return out;
  }

 private:
  /// Throws (once) if static initialization recorded duplicate
  /// registrations; the store stays usable afterwards.
  void report_conflicts_locked() PIMCOMP_REQUIRES(mutex_) {
    if (conflicts_.empty()) return;
    const std::string message =
        "duplicate registration at static initialization: " + conflicts_ +
        " (first registration wins)";
    conflicts_.clear();
    throw ConfigError(message);
  }

  std::map<std::string, Factory> factories_ PIMCOMP_GUARDED_BY(mutex_);
  std::string conflicts_ PIMCOMP_GUARDED_BY(mutex_);
  mutable Mutex mutex_;
};

}  // namespace pimcomp::detail

#endif  // PIMCOMP_CORE_REGISTRY_HPP
