#include "core/session.hpp"

#include <type_traits>
#include <utility>

#include "graph/serialize.hpp"
#include "sim/simulator.hpp"

namespace pimcomp {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a(std::uint64_t hash, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
  return hash;
}

std::uint64_t fnv1a_string(std::uint64_t hash, const std::string& s) {
  return fnv1a(hash, s.data(), s.size());
}

template <typename T>
std::uint64_t fnv1a_value(std::uint64_t hash, const T& value) {
  static_assert(std::is_arithmetic_v<T> || std::is_enum_v<T>,
                "hash scalar fields only");
  return fnv1a(hash, &value, sizeof(value));
}

std::uint64_t combine(std::uint64_t a, std::uint64_t b) {
  return fnv1a_value(fnv1a_value(kFnvOffset, a), b);
}

}  // namespace

std::uint64_t fingerprint(const Graph& graph) {
  // The JSON graph format carries exactly the information the backend
  // consumes (topology + per-node attributes), so its dump is a faithful
  // identity for partitioning purposes.
  return fnv1a_string(kFnvOffset, graph_to_json(graph).dump(0));
}

std::uint64_t fingerprint(const HardwareConfig& hw) {
  // Every field participates; a stale list would silently alias distinct
  // configs to one cached workload. The size guard trips (on LP64) when a
  // field is added to HardwareConfig without updating this function.
  static_assert(sizeof(void*) != 8 || sizeof(HardwareConfig) == 128,
                "HardwareConfig changed: update fingerprint() to hash the "
                "new fields");
  std::uint64_t h = kFnvOffset;
  h = fnv1a_value(h, hw.xbar_rows);
  h = fnv1a_value(h, hw.xbar_cols);
  h = fnv1a_value(h, hw.cell_bits);
  h = fnv1a_value(h, hw.weight_bits);
  h = fnv1a_value(h, hw.activation_bits);
  h = fnv1a_value(h, hw.xbars_per_core);
  h = fnv1a_value(h, hw.core_count);
  h = fnv1a_value(h, hw.cores_per_chip);
  h = fnv1a_value(h, hw.connection);
  h = fnv1a_value(h, hw.vfus_per_core);
  h = fnv1a_value(h, hw.vfu_ops_per_ns);
  h = fnv1a_value(h, hw.local_memory_bytes);
  h = fnv1a_value(h, hw.local_memory_gbps);
  h = fnv1a_value(h, hw.global_memory_bytes);
  h = fnv1a_value(h, hw.global_memory_gbps);
  h = fnv1a_value(h, hw.noc_flit_bytes);
  h = fnv1a_value(h, hw.noc_link_gbps);
  h = fnv1a_value(h, hw.noc_hop_latency);
  h = fnv1a_value(h, hw.ht_link_gbps);
  h = fnv1a_value(h, hw.ht_latency);
  h = fnv1a_value(h, hw.mvm_latency);
  return h;
}

CompilerSession::CompilerSession(Graph graph, HardwareConfig hw)
    : graph_(std::move(graph)), hw_(hw) {
  if (!graph_.finalized()) graph_.finalize();
  hw_.validate();
  graph_fingerprint_ = pimcomp::fingerprint(graph_);
}

std::uint64_t CompilerSession::fingerprint() const {
  return combine(graph_fingerprint_, pimcomp::fingerprint(hw_));
}

int CompilerSession::enqueue(Scenario scenario) {
  queue_.push_back(std::move(scenario));
  return static_cast<int>(queue_.size()) - 1;
}

int CompilerSession::enqueue(CompileOptions options, std::string label) {
  return enqueue(Scenario{std::move(label), std::move(options), std::nullopt});
}

std::vector<CompileResult> CompilerSession::compile_all() {
  // The queue is moved out first so observer callbacks may enqueue follow-up
  // scenarios for a later batch without invalidating this loop.
  std::vector<Scenario> batch = std::move(queue_);
  queue_.clear();
  std::vector<CompileResult> results;
  results.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    results.push_back(compile(batch[i], static_cast<int>(i)));
  }
  return results;
}

CompileResult CompilerSession::compile(const CompileOptions& options) {
  return compile(Scenario{std::string(), options, std::nullopt});
}

CompileResult CompilerSession::compile(const Scenario& scenario, int index) {
  const HardwareConfig& hw =
      scenario.hardware.has_value() ? *scenario.hardware : hw_;
  if (scenario.hardware.has_value()) hw.validate();

  const std::uint64_t key =
      combine(graph_fingerprint_, pimcomp::fingerprint(hw));

  PipelineContext ctx;
  ctx.graph = &graph_;
  ctx.hardware = &hw;
  ctx.options = &scenario.options;
  ctx.scenario_label = scenario.label;
  ctx.scenario_index = index;
  ctx.workload = find_cached(key);  // null on miss => partitioning stage runs

  CompileResult result = run_pipeline(std::move(ctx), observer_);
  workloads_.emplace(key, result.workload);
  return result;
}

SimReport CompilerSession::simulate(const CompileResult& result) const {
  SimOptions sim_options;
  sim_options.parallelism_degree = result.options.parallelism_degree;
  sim_options.mode = result.options.mode;
  // Simulate at the hardware the scenario actually compiled for (which may
  // be a per-scenario override, not the session default).
  return Simulator(result.workload->hardware(), sim_options)
      .run(result.schedule);
}

std::shared_ptr<const Workload> CompilerSession::find_cached(
    std::uint64_t key) const {
  const auto it = workloads_.find(key);
  return it == workloads_.end() ? nullptr : it->second;
}

}  // namespace pimcomp
