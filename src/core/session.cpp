#include "core/session.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <exception>
#include <thread>
#include <type_traits>
#include <utility>

#include "cache/artifact.hpp"
#include "cache/cache_store.hpp"
#include "cache/disk_store.hpp"
#include "cache/memory_store.hpp"
#include "cache/remote_tier.hpp"
#include "cache/tiered_store.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "graph/serialize.hpp"
#include "sim/simulator.hpp"

namespace pimcomp {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a(std::uint64_t hash, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
  return hash;
}

std::uint64_t fnv1a_string(std::uint64_t hash, const std::string& s) {
  // Length-prefixed so adjacent strings can't alias across their boundary
  // (("gal","l") must not hash like ("ga","ll")).
  const std::uint64_t size = s.size();
  hash = fnv1a(hash, &size, sizeof(size));
  return fnv1a(hash, s.data(), s.size());
}

template <typename T>
std::uint64_t fnv1a_value(std::uint64_t hash, const T& value) {
  static_assert(std::is_arithmetic_v<T> || std::is_enum_v<T>,
                "hash scalar fields only");
  return fnv1a(hash, &value, sizeof(value));
}

std::uint64_t combine(std::uint64_t a, std::uint64_t b) {
  return fnv1a_value(fnv1a_value(kFnvOffset, a), b);
}

/// Mapping-cache bound: generous for sweep-sized batches (the benches top
/// out at dozens of scenarios) while keeping a long-lived session's memory
/// flat when every scenario is distinct and can never hit.
constexpr std::size_t kMaxCachedMappings = 128;

/// Registry-compaction threshold: expired job weak_ptrs are swept once the
/// registry grows past this, keeping submit() O(1) amortized.
constexpr std::size_t kJobRegistrySweep = 64;

}  // namespace

std::uint64_t combine_fingerprints(std::uint64_t a, std::uint64_t b) {
  return combine(a, b);
}

std::string to_string(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kNone: return "";
    case ErrorKind::kCapacity: return "capacity";
    case ErrorKind::kConfig: return "config";
    case ErrorKind::kCancelled: return "cancelled";
    case ErrorKind::kDeadline: return "deadline";
    case ErrorKind::kInternal: return "internal";
  }
  return "internal";
}

ErrorKind error_kind_from_string(const std::string& s) {
  if (s.empty()) return ErrorKind::kNone;
  if (s == "capacity") return ErrorKind::kCapacity;
  if (s == "config") return ErrorKind::kConfig;
  if (s == "cancelled") return ErrorKind::kCancelled;
  if (s == "deadline") return ErrorKind::kDeadline;
  return ErrorKind::kInternal;
}

ErrorKind error_kind_of(const std::exception& e) {
  // Order matters only in that every listed type derives from Error; the
  // three leaf classes are disjoint.
  if (dynamic_cast<const CancelledError*>(&e) != nullptr) {
    return ErrorKind::kCancelled;
  }
  if (dynamic_cast<const CapacityError*>(&e) != nullptr) {
    return ErrorKind::kCapacity;
  }
  if (dynamic_cast<const ConfigError*>(&e) != nullptr) {
    return ErrorKind::kConfig;
  }
  return ErrorKind::kInternal;
}

std::uint64_t fingerprint(const Graph& graph) {
  // The JSON graph format carries exactly the information the backend
  // consumes (topology + per-node attributes), so its dump is a faithful
  // identity for partitioning purposes.
  return fnv1a_string(kFnvOffset, graph_to_json(graph).dump(0));
}

std::uint64_t fingerprint(const HardwareConfig& hw) {
  // Every field participates; a stale list would silently alias distinct
  // configs to one cached workload. The size guard trips (on LP64) when a
  // field is added to HardwareConfig without updating this function.
  static_assert(sizeof(void*) != 8 || sizeof(HardwareConfig) == 128,
                "HardwareConfig changed: update fingerprint() to hash the "
                "new fields");
  std::uint64_t h = kFnvOffset;
  h = fnv1a_value(h, hw.xbar_rows);
  h = fnv1a_value(h, hw.xbar_cols);
  h = fnv1a_value(h, hw.cell_bits);
  h = fnv1a_value(h, hw.weight_bits);
  h = fnv1a_value(h, hw.activation_bits);
  h = fnv1a_value(h, hw.xbars_per_core);
  h = fnv1a_value(h, hw.core_count);
  h = fnv1a_value(h, hw.cores_per_chip);
  h = fnv1a_value(h, hw.connection);
  h = fnv1a_value(h, hw.vfus_per_core);
  h = fnv1a_value(h, hw.vfu_ops_per_ns);
  h = fnv1a_value(h, hw.local_memory_bytes);
  h = fnv1a_value(h, hw.local_memory_gbps);
  h = fnv1a_value(h, hw.global_memory_bytes);
  h = fnv1a_value(h, hw.global_memory_gbps);
  h = fnv1a_value(h, hw.noc_flit_bytes);
  h = fnv1a_value(h, hw.noc_link_gbps);
  h = fnv1a_value(h, hw.noc_hop_latency);
  h = fnv1a_value(h, hw.ht_link_gbps);
  h = fnv1a_value(h, hw.ht_latency);
  h = fnv1a_value(h, hw.mvm_latency);
  return h;
}

std::uint64_t fingerprint(const CompileOptions& options) {
  // Every semantic field participates, scheduler via its *effective* key so
  // an explicit "ht" and a mode-derived "ht" hash alike. Aliasing two
  // distinct configurations here would hand one of them the other's cached
  // result. `options.cache` is deliberately NOT hashed: it is execution
  // environment (where artifacts live), and folding it in would make a
  // cache-enabled run unable to reuse a cache-less run's identity.
  //
  // This function is part of the persisted-cache schema: its values name
  // artifacts on disk across processes and releases. Changing what or how
  // it hashes requires bumping kCacheSchemaVersion (src/cache/) — the
  // goldens in tests/test_fingerprint_goldens.cpp enforce that.
  std::uint64_t h = kFnvOffset;
  h = fnv1a_value(h, options.mode);
  h = fnv1a_value(h, options.parallelism_degree);
  h = fnv1a_value(h, options.memory_policy);
  h = fnv1a_string(h, options.mapper);
  h = fnv1a_string(h, options.scheduler_key());
  h = fnv1a_string(h, options.backend);
  h = fnv1a_value(h, options.ga.population);
  h = fnv1a_value(h, options.ga.generations);
  h = fnv1a_value(h, options.ga.elite);
  h = fnv1a_value(h, options.ga.tournament_size);
  h = fnv1a_value(h, options.ga.mutations_per_child);
  h = fnv1a_value(h, options.ga.target_fill);
  h = fnv1a_value(h, options.ga.enable_grow);
  h = fnv1a_value(h, options.ga.enable_shrink);
  h = fnv1a_value(h, options.ga.enable_spread);
  h = fnv1a_value(h, options.ga.enable_merge);
  h = fnv1a_value(h, options.ga.seed_baseline);
  h = fnv1a_value(h, options.ga.islands);
  h = fnv1a_value(h, options.ga.migration_interval);
  h = fnv1a_value(h, options.max_nodes_per_core);
  h = fnv1a_value(h, options.ht_flush_windows);
  h = fnv1a_value(h, options.seed);
  return h;
}

// ---------------------------------------------------------------------------
// CompileJob.
// ---------------------------------------------------------------------------

/// Shared state behind one CompileJob handle. Single-writer state machine:
/// only the session's job runner transitions `status` (kQueued -> kRunning
/// -> kDone/kCancelled); cancel() only raises the token, which the runner
/// observes. The state outlives both the session and the pool, so handles
/// stay usable after either is gone (by then every job is terminal).
struct CompileJob::State {
  Scenario scenario;
  int index = -1;
  std::uint64_t tag = 0;
  std::chrono::steady_clock::time_point deadline{};  ///< epoch = none
  std::function<void(const ScenarioOutcome&)> on_complete;
  CancelToken token;
  ThreadPool* owner_pool = nullptr;  ///< helping-wait identity; see wait()

  mutable Mutex mutex;
  mutable CondVar cv;
  std::atomic<JobStatus> status{JobStatus::kQueued};
  /// Deliberately not GUARDED_BY(mutex): protected by publication, not the
  /// lock — written exactly once (under `mutex`) before the release-store
  /// that turns `status` terminal, and only read after terminal() observed
  /// that store (wait()'s return, the completion callback, compile_all()'s
  /// move-out).
  ScenarioOutcome outcome;

  bool terminal() const {
    const JobStatus s = status.load(std::memory_order_acquire);
    return s == JobStatus::kDone || s == JobStatus::kCancelled;
  }
};

namespace {
CompileJob::State& require_state(
    const std::shared_ptr<CompileJob::State>& state) {
  PIMCOMP_CHECK(state != nullptr, "empty CompileJob handle");
  return *state;
}
}  // namespace

JobStatus CompileJob::poll() const {
  return require_state(state_).status.load(std::memory_order_acquire);
}

bool CompileJob::done() const { return require_state(state_).terminal(); }

const ScenarioOutcome& CompileJob::wait() const {
  State& state = require_state(state_);
  // Deadlock avoidance for nested waits: a session worker waiting on a job
  // of its own pool (a completion callback or observer that submitted
  // follow-up work) runs queued jobs inline instead of blocking — otherwise
  // a one-worker session would wait on work only it can run.
  if (!state.terminal() && state.owner_pool != nullptr &&
      ThreadPool::current() == state.owner_pool) {
    while (!state.terminal() && state.owner_pool->run_one()) {
    }
  }
  MutexLock lock(state.mutex);
  while (!state.terminal()) state.cv.wait(state.mutex);
  return state.outcome;
}

bool CompileJob::cancel() const {
  State& state = require_state(state_);
  state.token.request();
  // True = the request landed before the job turned terminal: a queued job
  // is now guaranteed to finalize as cancelled, a running one aborts at its
  // next stage/generation boundary (and may still complete if it was past
  // the last one — the outcome is authoritative).
  return !state.terminal();
}

const std::string& CompileJob::label() const {
  return require_state(state_).scenario.label;
}

int CompileJob::index() const { return require_state(state_).index; }

std::uint64_t CompileJob::tag() const { return require_state(state_).tag; }

// ---------------------------------------------------------------------------
// CompilerSession.
// ---------------------------------------------------------------------------

/// Coordination record of one in-flight (or deterministically failed)
/// partitioning. The first scenario to claim a fingerprint becomes the
/// owner and partitions; concurrent peers block on `published` until the
/// owner either stores the workload into workload_store_ (peers then
/// re-read the store) or publishes the failure here (CapacityError for an
/// infeasible design point), which every peer rethrows without
/// re-partitioning. Claims with deterministic failures stay registered as
/// the negative cache; successful claims retire once the store is
/// populated.
struct CompilerSession::WorkloadClaim {
  Mutex mutex;
  CondVar published;
  bool done PIMCOMP_GUARDED_BY(mutex) = false;
  std::exception_ptr failure PIMCOMP_GUARDED_BY(mutex);
  /// Claimant; written once under workload_mutex_ at claim time, before the
  /// shared_ptr is published to any peer — immutable (and safe to read
  /// without `mutex`) afterwards.
  std::thread::id owner;
};

/// Serializing forwarder placed between the pipeline and the user observer:
/// worker threads call in concurrently, the user observer only ever runs
/// under `session->observer_mutex_`.
class CompilerSession::ObserverGate final : public PipelineObserver {
 public:
  explicit ObserverGate(CompilerSession* session) : session_(session) {}

  void on_stage_begin(const StageInfo& info) override {
    RecursiveMutexLock lock(session_->observer_mutex_);
    if (session_->observer_ != nullptr) session_->observer_->on_stage_begin(info);
  }

  void on_stage_end(const StageInfo& info) override {
    RecursiveMutexLock lock(session_->observer_mutex_);
    if (session_->observer_ != nullptr) session_->observer_->on_stage_end(info);
  }

  void on_cache_hit(const CacheEvent& event) override {
    RecursiveMutexLock lock(session_->observer_mutex_);
    if (session_->observer_ != nullptr) session_->observer_->on_cache_hit(event);
  }

  void on_cache_store(const CacheEvent& event) override {
    RecursiveMutexLock lock(session_->observer_mutex_);
    if (session_->observer_ != nullptr) {
      session_->observer_->on_cache_store(event);
    }
  }

 private:
  CompilerSession* session_;
};

CompilerSession::CompilerSession(Graph graph, HardwareConfig hw,
                                 CacheConfig cache)
    : graph_(std::move(graph)), hw_(hw), cache_config_(std::move(cache)) {
  if (!graph_.finalized()) graph_.finalize();
  hw_.validate();
  graph_fingerprint_ = pimcomp::fingerprint(graph_);
  gate_ = std::make_unique<ObserverGate>(this);

  workload_store_ = std::make_unique<InMemoryStore>();
  auto memory = std::make_unique<InMemoryStore>(kMaxCachedMappings);
  mapping_memory_ = memory.get();
  if (cache_config_.enabled() || cache_config_.remote_enabled()) {
    // Fastest tier first: memory, then this process's disk, then peer
    // daemons over the wire — each strictly slower and stricter about
    // revalidation than the one before it.
    std::vector<std::unique_ptr<CacheStore>> tiers;
    tiers.push_back(std::move(memory));
    if (cache_config_.enabled()) {
      auto disk = std::make_unique<DiskStore>(cache_config_);
      mapping_disk_ = disk.get();
      tiers.push_back(std::move(disk));
    }
    if (cache_config_.remote_enabled()) {
      // Resolved through the cache/remote_tier.hpp seam so core/ never
      // includes fleet/ — the concrete RemoteStore registers its factory
      // when src/fleet/ is linked in.
      auto remote = make_remote_tier(cache_config_);
      PIMCOMP_CHECK(remote != nullptr,
                    "CacheConfig::peers set but no remote cache tier is "
                    "linked into this binary");
      mapping_remote_ = remote.get();
      tiers.push_back(std::move(remote));
    }
    mapping_store_ = std::make_unique<TieredStore>(std::move(tiers));
  } else {
    // Memory-only: the composed store *is* the memory tier, so the default
    // session pays nothing for the abstraction.
    mapping_store_ = std::move(memory);
  }
}

CompilerSession::~CompilerSession() {
  // Outstanding jobs are cancelled, not completed: queued ones finalize as
  // cancelled the moment a draining worker pops them, running ones abort at
  // their next cancellation boundary. The pool teardown below waits for all
  // of that, so every CompileJob handle is terminal when we return.
  cancel_all_jobs();
  std::unique_ptr<ThreadPool> pool;
  {
    MutexLock lock(job_mutex_);
    shutting_down_ = true;  // submit() from a draining callback must not
                            // resurrect a pool over dying session state
    pool = std::move(pool_);
    job_registry_.clear();
  }
  pool.reset();  // drains the queue and joins the workers
}

std::uint64_t CompilerSession::fingerprint() const {
  return combine(graph_fingerprint_, pimcomp::fingerprint(hw_));
}

void CompilerSession::set_observer(PipelineObserver* observer) {
  RecursiveMutexLock lock(observer_mutex_);
  observer_ = observer;
}

void CompilerSession::set_jobs(int jobs) {
  jobs_ = jobs <= 0 ? ThreadPool::hardware_threads() : jobs;
}

void CompilerSession::ensure_pool_locked() {
  if (pool_ != nullptr && pool_->size() == jobs_) return;
  if (pool_ != nullptr && outstanding_jobs_.load() != 0) {
    // A resize with jobs in flight is deferred: the current pool keeps
    // draining, the new size applies at the first submit after idle.
    return;
  }
  pool_.reset();  // idle: joining is instant
  pool_ = std::make_unique<ThreadPool>(jobs_);
}

CompileJob CompilerSession::submit(Scenario scenario, JobOptions options) {
  auto state = std::make_shared<CompileJob::State>();
  state->scenario = std::move(scenario);
  state->index = options.index;
  state->tag = options.tag;
  state->deadline = options.deadline;
  state->on_complete = std::move(options.on_complete);
  bool rejected = false;
  {
    MutexLock lock(job_mutex_);
    if (shutting_down_) {
      // ~CompilerSession is draining: a follow-up submitted from a dying
      // job's completion callback is finalized as cancelled on the spot —
      // it must not revive a worker pool over session state mid-teardown.
      state->outcome.label = state->scenario.label;
      state->outcome.index = state->index;
      state->outcome.error = "session is shutting down";
      state->outcome.error_kind = ErrorKind::kCancelled;
      state->status.store(JobStatus::kCancelled, std::memory_order_release);
      rejected = true;
    } else {
      ensure_pool_locked();
      state->owner_pool = pool_.get();
      if (job_registry_.size() >= kJobRegistrySweep) {
        job_registry_.erase(
            std::remove_if(job_registry_.begin(), job_registry_.end(),
                           [](const std::weak_ptr<CompileJob::State>& weak) {
                             const auto held = weak.lock();
                             return held == nullptr || held->terminal();
                           }),
            job_registry_.end());
      }
      job_registry_.push_back(state);
      outstanding_jobs_.fetch_add(1, std::memory_order_relaxed);
      pool_->submit([this, state] { run_job(state); }, options.priority);
    }
  }
  if (rejected && state->on_complete) {
    // Outside job_mutex_, honoring the JobOptions contract ("runs outside
    // all session locks"): a callback that submits again must not relock.
    state->on_complete(state->outcome);
  }
  return CompileJob(state);
}

CompileJob CompilerSession::submit(CompileOptions options, std::string label,
                                   JobOptions job) {
  return submit(Scenario{std::move(label), std::move(options), std::nullopt},
                std::move(job));
}

std::size_t CompilerSession::outstanding_jobs() const {
  return outstanding_jobs_.load(std::memory_order_relaxed);
}

std::size_t CompilerSession::cancel_all_jobs() {
  std::vector<std::shared_ptr<CompileJob::State>> states;
  {
    MutexLock lock(job_mutex_);
    states.reserve(job_registry_.size());
    for (const std::weak_ptr<CompileJob::State>& weak : job_registry_) {
      if (std::shared_ptr<CompileJob::State> state = weak.lock()) {
        states.push_back(std::move(state));
      }
    }
  }
  std::size_t cancelled = 0;
  for (const std::shared_ptr<CompileJob::State>& state : states) {
    if (!state->terminal()) {
      state->token.request();
      ++cancelled;
    }
  }
  return cancelled;
}

void CompilerSession::wait_jobs_idle() {
  ThreadPool* pool = nullptr;
  {
    MutexLock lock(job_mutex_);
    pool = pool_.get();
  }
  if (pool != nullptr) pool->wait_idle();
}

void CompilerSession::run_job(const std::shared_ptr<CompileJob::State>& state) {
  state->status.store(JobStatus::kRunning, std::memory_order_release);

  ScenarioOutcome outcome;
  outcome.label = state->scenario.label;
  outcome.index = state->index;
  if (state->token.cancelled()) {
    // Cancelled while queued: no stage ever runs for this job.
    outcome.error = "cancelled before start";
    outcome.error_kind = ErrorKind::kCancelled;
  } else if (state->deadline != std::chrono::steady_clock::time_point{} &&
             std::chrono::steady_clock::now() >= state->deadline) {
    // The client's deadline expired while the job sat in the queue: drop it
    // before any stage runs — nobody is waiting for the result. kDone (not
    // kCancelled) terminal: the caller did not cancel, the clock did.
    outcome.error = "deadline expired before start";
    outcome.error_kind = ErrorKind::kDeadline;
  } else {
    try {
      outcome.result = compile_scenario(state->scenario, state->index,
                                        state->tag, &state->token);
    } catch (const std::exception& e) {
      // An infeasible design point (CapacityError), bad configuration
      // (ConfigError), or observed cancellation fails this job only; the
      // queue carries on.
      outcome.error = e.what();
      outcome.error_kind = error_kind_of(e);
    } catch (...) {
      outcome.error = "unknown error";
      outcome.error_kind = ErrorKind::kInternal;
    }
  }

  const JobStatus terminal = outcome.error_kind == ErrorKind::kCancelled
                                 ? JobStatus::kCancelled
                                 : JobStatus::kDone;
  std::function<void(const ScenarioOutcome&)> callback;
  {
    MutexLock lock(state->mutex);
    state->outcome = std::move(outcome);
    state->status.store(terminal, std::memory_order_release);
    callback = std::move(state->on_complete);
  }
  state->cv.notify_all();
  // The callback runs after waiters are released and outside every session
  // lock; it sees the final outcome and may submit follow-up jobs.
  if (callback) callback(state->outcome);
  outstanding_jobs_.fetch_sub(1, std::memory_order_relaxed);
}

int CompilerSession::enqueue(Scenario scenario) {
  MutexLock lock(queue_mutex_);
  queue_.push_back(std::move(scenario));
  return static_cast<int>(queue_.size()) - 1;
}

int CompilerSession::enqueue(CompileOptions options, std::string label) {
  return enqueue(Scenario{std::move(label), std::move(options), std::nullopt});
}

int CompilerSession::pending() const {
  MutexLock lock(queue_mutex_);
  return static_cast<int>(queue_.size());
}

std::vector<ScenarioOutcome> CompilerSession::compile_all() {
  // The queue is moved out first so observer callbacks may enqueue follow-up
  // scenarios for a later batch without invalidating this loop.
  std::vector<Scenario> batch;
  {
    MutexLock lock(queue_mutex_);
    batch = std::move(queue_);
    queue_.clear();
  }

  // Thin wrapper over the job API: submit-all, wait-all. A one-worker
  // session (the default) runs the jobs strictly FIFO, which keeps this
  // path — outcomes, cache-hit counts, observer event order — identical to
  // the historical inline sequential loop; wider pools overlap jobs but
  // stay bit-identical per scenario at equal seeds.
  std::vector<CompileJob> jobs;
  jobs.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    JobOptions options;
    options.index = static_cast<int>(i);
    jobs.push_back(submit(std::move(batch[i]), std::move(options)));
  }

  std::vector<ScenarioOutcome> outcomes;
  outcomes.reserve(jobs.size());
  for (CompileJob& job : jobs) {
    job.wait();
    // These handles never leave this wrapper, so the outcome — which holds
    // the full CompileResult (per-core op streams, GA history) — is moved
    // out of the job state instead of deep-copied.
    outcomes.push_back(std::move(job.state_->outcome));
  }
  return outcomes;
}

CompileResult CompilerSession::compile(const CompileOptions& options) {
  return compile(Scenario{std::string(), options, std::nullopt});
}

CompileResult CompilerSession::compile(const Scenario& scenario, int index) {
  return compile_scenario(scenario, index, /*tag=*/0, /*cancel=*/nullptr);
}

/// One in-flight mapping computation. The first job of a mapping key
/// becomes the owner and compiles; concurrent identical jobs wait on
/// `settled` instead of duplicating the GA, then re-read the cache (a
/// mapping cache hit) — or re-claim if the owner failed without publishing
/// (e.g. it was cancelled: cancellation must never leak to innocent peers).
struct CompilerSession::MappingClaim {
  Mutex mutex;
  CondVar settled;
  bool done PIMCOMP_GUARDED_BY(mutex) = false;
  /// Claimant; written once under mapping_mutex_ at claim time, before the
  /// shared_ptr is published to any peer — immutable (and safe to read
  /// without `mutex`) afterwards.
  std::thread::id owner;
};

CompileResult CompilerSession::compile_scenario(const Scenario& scenario,
                                                int index, std::uint64_t tag,
                                                const CancelToken* cancel) {
  const HardwareConfig& hw =
      scenario.hardware.has_value() ? *scenario.hardware : hw_;
  if (scenario.hardware.has_value()) hw.validate();

  // Fail fast on unknown strategy keys: before partitioning is paid for and
  // before a cache slot is claimed.
  validate_strategies(scenario.options);
  if (cancel != nullptr) cancel->throw_if_cancelled("compilation");

  const std::uint64_t workload_key =
      combine(graph_fingerprint_, pimcomp::fingerprint(hw));
  const std::uint64_t mapping_key =
      combine(workload_key, pimcomp::fingerprint(scenario.options));

  const auto run_stages = [&]() -> CompileResult {
    double partition_seconds = 0.0;
    std::shared_ptr<const Workload> workload = resolve_workload(
        workload_key, hw, scenario.label, index, tag, &partition_seconds);

    PipelineContext ctx;
    ctx.graph = &graph_;
    ctx.hardware = &hw;
    ctx.options = &scenario.options;
    ctx.scenario_label = scenario.label;
    ctx.scenario_index = index;
    ctx.tag = tag;
    ctx.cancel = cancel;
    ctx.workload = std::move(workload);  // pre-seeded => partitioning skipped
    ctx.stage_times.partitioning = partition_seconds;
    ctx.stream_binding = mapping_key;  // lowered streams carry their cache key

    CompileResult result = run_pipeline(std::move(ctx), gate_.get());
    store_mapping(mapping_key, workload_key, result, scenario.label, index,
                  tag);
    return result;
  };

  for (;;) {
    if (std::optional<CacheHit> hit = mapping_store_->load(mapping_key)) {
      std::optional<CompileResult> adopted =
          adopt_mapping_hit(std::move(*hit), scenario, hw, index, tag,
                            workload_key, mapping_key);
      if (adopted.has_value()) return std::move(*adopted);
      // Untrustworthy persisted artifact: it was evicted; fall through to
      // the claim-and-compute path *without* re-consulting the store, so a
      // read-only disk tier serving the same bad artifact forever cannot
      // livelock this loop.
    }

    std::shared_ptr<MappingClaim> claim;
    bool owner = false;
    {
      MutexLock lock(mapping_mutex_);
      std::shared_ptr<MappingClaim>& slot = inflight_mappings_[mapping_key];
      if (slot == nullptr) {
        slot = std::make_shared<MappingClaim>();
        slot->owner = std::this_thread::get_id();
        owner = true;
      }
      claim = slot;
    }

    if (!owner) {
      if (claim->owner == std::this_thread::get_id()) {
        // Re-entrant identical compile from inside the owner's own
        // observer callback: waiting would be waiting on ourselves, so
        // compute privately (store_mapping keeps the first publisher).
        return run_stages();
      }
      MutexLock lock(claim->mutex);
      while (!claim->done) {
        claim->settled.wait_for(claim->mutex, std::chrono::milliseconds(50));
        // A cancelled waiter leaves promptly instead of riding out the
        // owner's whole GA run.
        if (cancel != nullptr && cancel->cancelled()) {
          throw CancelledError(
              "cancelled while waiting for an identical in-flight "
              "compilation");
        }
      }
      // The owner settled: normally its result is now in the cache (the
      // loop's mapping_store_ load reports the hit via adopt_mapping_hit);
      // if the owner failed or was cancelled without publishing — or the
      // result was already evicted — this thread re-claims and computes
      // itself.
      continue;
    }

    // Owner: compute, publish (store_mapping inside run_stages), and wake
    // the peers whether we succeeded or not — on failure they re-claim
    // rather than inheriting an error that may be ours alone (cancel).
    try {
      CompileResult result = run_stages();
      release_mapping_claim(mapping_key, claim);
      return result;
    } catch (...) {
      release_mapping_claim(mapping_key, claim);
      throw;
    }
  }
}

void CompilerSession::release_mapping_claim(
    std::uint64_t key, const std::shared_ptr<MappingClaim>& claim) {
  {
    MutexLock lock(mapping_mutex_);
    const auto it = inflight_mappings_.find(key);
    if (it != inflight_mappings_.end() && it->second == claim) {
      inflight_mappings_.erase(it);
    }
  }
  {
    MutexLock lock(claim->mutex);
    claim->done = true;
  }
  claim->settled.notify_all();
}

SimReport CompilerSession::simulate(const CompileResult& result) const {
  SimOptions sim_options;
  sim_options.parallelism_degree = result.options.parallelism_degree;
  sim_options.mode = result.options.mode;
  // Simulate at the hardware the scenario actually compiled for (which may
  // be a per-scenario override, not the session default).
  return Simulator(result.workload->hardware(), sim_options)
      .run(result.schedule);
}

std::size_t CompilerSession::cached_workloads() const {
  // Only successful partitions reach the store; failed claims are the
  // negative cache and deliberately don't count.
  return static_cast<std::size_t>(workload_store_->entry_count());
}

std::size_t CompilerSession::cached_mappings() const {
  return static_cast<std::size_t>(mapping_memory_->entry_count());
}

std::vector<std::pair<const char*, CacheStoreStats>>
CompilerSession::mapping_tier_stats() const {
  std::vector<std::pair<const char*, CacheStoreStats>> tiers;
  tiers.emplace_back(cache_sources::kMemory, mapping_memory_->stats());
  if (mapping_disk_ != nullptr) {
    tiers.emplace_back(cache_sources::kDisk, mapping_disk_->stats());
  }
  if (mapping_remote_ != nullptr) {
    tiers.emplace_back(cache_sources::kRemote, mapping_remote_->stats());
  }
  return tiers;
}

std::shared_ptr<const Workload> CompilerSession::resolve_workload(
    std::uint64_t key, const HardwareConfig& hw, const std::string& label,
    int index, std::uint64_t tag, double* partition_seconds) {
  for (;;) {
    if (std::optional<CacheHit> hit = workload_store_->load(key)) {
      auto workload =
          std::static_pointer_cast<const Workload>(hit->entry.decoded);
      notify_cache_hit(cache_names::kWorkload, label, index, tag,
                       workload_hits_, hit->source);
      return workload;
    }

    std::shared_ptr<WorkloadClaim> claim;
    bool owner = false;
    {
      MutexLock lock(workload_mutex_);
      std::shared_ptr<WorkloadClaim>& slot = workload_claims_[key];
      if (slot == nullptr) {
        slot = std::make_shared<WorkloadClaim>();
        slot->owner = std::this_thread::get_id();
        owner = true;
      }
      claim = slot;
    }

    if (owner) {
      // The partitioning stage runs here, outside the pipeline's stage
      // loop, so its once-per-fingerprint semantics hold under concurrency
      // — but with the same observer events and timing the loop would
      // produce. Deliberately no cancellation check on this path: a
      // cancelled owner would strand innocent peers waiting on the same
      // fingerprint (partitioning is the cheap stage; cancellation lands
      // at the next stage boundary instead).
      StageInfo info{stage_names::kPartitioning, label, index, 0.0, tag};
      const auto t0 = std::chrono::steady_clock::now();
      try {
        // The begin callback runs inside the try: an observer that throws
        // must take the failure path below, or the claim would stay
        // unpublished forever and strand every waiter on this fingerprint.
        gate_->on_stage_begin(info);
        auto workload = std::make_shared<const Workload>(graph_, hw);
        *partition_seconds = seconds_since(t0);
        info.seconds = *partition_seconds;
        // Store first, then settle the claim: a waiter that wakes on
        // `done` must find the workload already published.
        CacheEntry entry;
        entry.decoded = workload;
        workload_store_->store(key, entry);
        {
          MutexLock claim_lock(claim->mutex);
          claim->done = true;
        }
        claim->published.notify_all();
        {
          // Success retires the claim — the store is the cache now.
          MutexLock lock(workload_mutex_);
          const auto it = workload_claims_.find(key);
          if (it != workload_claims_.end() && it->second == claim) {
            workload_claims_.erase(it);
          }
        }
        gate_->on_stage_end(info);
        return workload;
      } catch (...) {
        // Publish the failure so waiting peers rethrow it instead of
        // re-partitioning, keeping the observer's begin/end pairing.
        // Deterministic failures of the input itself (CapacityError: the
        // model cannot fit; ConfigError: the graph/config is unusable)
        // keep their claim registered as the negative cache — every retry
        // would fail identically. Anything else (e.g. a transient
        // bad_alloc under memory pressure) retires the claim so a later
        // compile retries partitioning instead of rethrowing a stale error
        // for the session's lifetime.
        info.seconds = seconds_since(t0);
        const std::exception_ptr failure = std::current_exception();
        bool deterministic = false;
        try {
          std::rethrow_exception(failure);
        } catch (const CapacityError&) {
          deterministic = true;
        } catch (const ConfigError&) {
          deterministic = true;
        } catch (...) {
        }
        {
          MutexLock claim_lock(claim->mutex);
          claim->failure = failure;
          claim->done = true;
        }
        claim->published.notify_all();
        if (!deterministic) {
          MutexLock lock(workload_mutex_);
          const auto it = workload_claims_.find(key);
          if (it != workload_claims_.end() && it->second == claim) {
            workload_claims_.erase(it);
          }
        }
        gate_->on_stage_end(info);
        throw;
      }
    }

    {
      MutexLock claim_lock(claim->mutex);
      if (!claim->done && claim->owner == std::this_thread::get_id()) {
        // Re-entrant compile of the same fingerprint from inside this
        // thread's own partitioning observer callback: waiting would be
        // waiting on ourselves. Build a private workload instead (the
        // pre-cache behavior); the outer frame publishes the shared one.
        claim_lock.unlock();
        const auto t0 = std::chrono::steady_clock::now();
        auto private_workload = std::make_shared<const Workload>(graph_, hw);
        *partition_seconds = seconds_since(t0);
        return private_workload;
      }
      while (!claim->done) claim->published.wait(claim->mutex);
      if (claim->failure != nullptr) std::rethrow_exception(claim->failure);
    }
    // The owner settled successfully: loop around and take the store hit
    // (which also fires the workload cache-hit event, as waiting on the
    // owner always did).
  }
}

std::optional<CompileResult> CompilerSession::adopt_mapping_hit(
    CacheHit hit, const Scenario& scenario, const HardwareConfig& hw,
    int index, std::uint64_t tag, std::uint64_t workload_key,
    std::uint64_t mapping_key) {
  if (hit.entry.decoded != nullptr) {
    // Memory tier: the historical fast path. The shared decoded result is
    // copied (the session, like before the refactor, hands each caller an
    // independent CompileResult) with zeroed stage times — no stage ran.
    auto stored =
        std::static_pointer_cast<const CompileResult>(hit.entry.decoded);
    notify_cache_hit(cache_names::kMapping, scenario.label, index, tag,
                     mapping_hits_, hit.source);
    CompileResult result = *stored;
    result.stage_times = StageTimes{};
    return result;
  }

  // Disk or remote tier: the artifact is only JSON. Resolve the workload
  // first (a cache hit of its own after the first scenario; partitioning is
  // the cheap stage) — its failures (CapacityError, cancellation via the
  // caller's earlier check) are genuine scenario failures and propagate.
  // The partitioning time it may report is observable through the stage
  // events but not the result: a cache hit returns zeroed stage times, so
  // warm results stay byte-identical to memory-tier hits. A remote artifact
  // passes through exactly this same revalidation — peer answers earn no
  // shortcut.
  double partition_seconds = 0.0;
  std::shared_ptr<const Workload> workload = resolve_workload(
      workload_key, hw, scenario.label, index, tag, &partition_seconds);
  (void)partition_seconds;
  try {
    CompileResult result = compile_result_from_artifact(
        hit.entry.artifact, std::move(workload), scenario.options,
        workload_key);
    if (std::strcmp(hit.source, cache_sources::kRemote) == 0) {
      mapping_remote_hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      mapping_disk_hits_.fetch_add(1, std::memory_order_relaxed);
    }
    notify_cache_hit(cache_names::kMapping, scenario.label, index, tag,
                     mapping_hits_, hit.source);
    // Promotion: re-store the entry with the decoded result attached. The
    // memory tier adopts it; the disk tier sees its existing file and
    // leaves it untouched. Deliberately no on_cache_store event — nothing
    // new was computed.
    CacheEntry promoted;
    promoted.artifact = std::move(hit.entry.artifact);
    promoted.decoded = std::make_shared<const CompileResult>(result);
    mapping_store_->store(mapping_key, promoted);
    return result;
  } catch (const Error&) {
    // Corrupt, mismatched, or invariant-violating artifact: evict it and
    // report a miss so the caller computes. Never a compile failure — the
    // cache must not be able to break a compilation it could only have
    // accelerated.
    mapping_store_->erase(mapping_key);
    return std::nullopt;
  }
}

void CompilerSession::store_mapping(std::uint64_t key,
                                    std::uint64_t workload_key,
                                    const CompileResult& result,
                                    const std::string& label, int index,
                                    std::uint64_t tag) {
  CacheEntry entry;
  entry.decoded = std::make_shared<const CompileResult>(result);
  if (mapping_disk_ != nullptr || mapping_remote_ != nullptr) {
    // Encoding is only paid when a persistent or peer tier wants the
    // artifact, and is best-effort: a result that cannot serialize still
    // caches in memory.
    try {
      entry.artifact = compile_result_to_artifact(result, workload_key, key);
    } catch (const std::exception&) {
    }
  }
  // First writer wins inside the stores (racing identical scenarios carry
  // bit-identical payloads); the store event fires only when something was
  // newly persisted, attributed to the deepest tier that took it.
  if (const char* source = mapping_store_->store(key, entry)) {
    notify_cache_store(cache_names::kMapping, label, index, tag, source);
  }
}

void CompilerSession::notify_cache_hit(const char* cache,
                                       const std::string& label, int index,
                                       std::uint64_t tag,
                                       std::atomic<std::uint64_t>& counter,
                                       const char* source) {
  // Increment under the observer serialization mutex so the cumulative
  // `hits` values reach the observer in monotonic order even when parallel
  // workers hit the caches simultaneously.
  RecursiveMutexLock lock(observer_mutex_);
  const std::uint64_t hits = counter.fetch_add(1) + 1;
  if (observer_ != nullptr) {
    observer_->on_cache_hit(CacheEvent{cache, label, index, hits, tag,
                                       source});
  }
}

void CompilerSession::notify_cache_store(const char* cache,
                                         const std::string& label, int index,
                                         std::uint64_t tag,
                                         const char* source) {
  RecursiveMutexLock lock(observer_mutex_);
  const std::uint64_t stores = mapping_stores_.fetch_add(1) + 1;
  if (observer_ != nullptr) {
    observer_->on_cache_store(CacheEvent{cache, label, index, stores, tag,
                                         source});
  }
}

}  // namespace pimcomp
