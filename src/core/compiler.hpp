#ifndef PIMCOMP_CORE_COMPILER_HPP
#define PIMCOMP_CORE_COMPILER_HPP

#include <memory>
#include <string>

#include "arch/hardware_config.hpp"
#include "cache/cache_config.hpp"
#include "graph/graph.hpp"
#include "mapping/genetic_mapper.hpp"
#include "mapping/mapper.hpp"
#include "partition/workload.hpp"
#include "schedule/memory_allocator.hpp"
#include "schedule/operation.hpp"
#include "sim/sim_report.hpp"
#include "sim/simulator.hpp"

namespace pimcomp {

class PipelineObserver;     // core/pipeline.hpp
struct InstructionStream;   // backend/instruction_stream.hpp

/// Legacy names of the three built-in stage-2+3 strategies. New code selects
/// strategies through the string keys of MapperRegistry (core/pipeline.hpp);
/// the enum survives as a typed alias for the built-ins.
enum class MapperKind {
  kGenetic,   ///< PIMCOMP's GA (the paper's contribution)
  kPumaLike,  ///< the paper's baseline: pipeline-balanced + greedy packing
  kGreedy,    ///< no replication, first-fit (ablation)
};

std::string to_string(MapperKind kind);

/// MapperRegistry key of a built-in strategy ("ga", "puma", "greedy").
std::string registry_key(MapperKind kind);

/// Everything a user chooses for one compilation (paper Fig 3 left box +
/// "Application Scenario").
struct CompileOptions {
  PipelineMode mode = PipelineMode::kHighThroughput;
  int parallelism_degree = 20;
  MemoryPolicy memory_policy = MemoryPolicy::kAgReuse;

  /// MapperRegistry key of the replicating+mapping strategy. Built-ins:
  /// "ga", "puma", "greedy"; plugins may register more.
  std::string mapper = "ga";

  /// SchedulerRegistry key of the dataflow generator; empty derives it from
  /// `mode` ("ht" / "ll").
  std::string scheduler;

  /// BackendRegistry key of the lowering backend ("isa-json", "sim", ...).
  /// Empty (the default) skips the lowering stage entirely: the compile
  /// stops at the internal Schedule, exactly as before backends existed.
  /// Non-empty keys add a fourth pipeline stage whose InstructionStream
  /// artifact rides CompileResult::stream (and the persistent cache).
  std::string backend;

  GaConfig ga;                 ///< GA hyperparameters (mapper == "ga" only)
  int max_nodes_per_core = 8;  ///< chromosome bound max_node_num_in_core
  int ht_flush_windows = 2;    ///< HT global-memory flush period
  std::uint64_t seed = 1;

  /// Persistent-cache environment for the session this compile runs under
  /// (frontends parse --cache-dir into here and hand it to
  /// CompilerSession's constructor). This is execution *environment*, not a
  /// compilation input: it is deliberately excluded from
  /// fingerprint(CompileOptions), because where artifacts are stored must
  /// never change what is computed. Ignored by the cache-less Compiler.
  // pimcomp-fp-exempt: execution environment (where artifacts are stored),
  // never part of the compile identity — see the doc comment above.
  CacheConfig cache;

  /// Effective SchedulerRegistry key (explicit `scheduler`, else from mode).
  std::string scheduler_key() const;
};

/// Wall-clock seconds per compilation stage (paper Table II rows), recorded
/// by the pipeline's generic stage loop. A cached partitioning stage (see
/// CompilerSession) does not run and leaves `partitioning` at zero.
struct StageTimes {
  double partitioning = 0.0;
  double mapping = 0.0;  ///< replicating + core mapping
  double scheduling = 0.0;
  double lowering = 0.0;  ///< backend lowering (0 when no backend selected)
  double total() const {
    return partitioning + mapping + scheduling + lowering;
  }
};

/// The output of one compilation: the mapping decision, the per-core
/// operation streams, stage timings, and the mapper's own fitness estimate.
/// Holds shared ownership of the workload the solution points into.
struct CompileResult {
  std::shared_ptr<const Workload> workload;
  MappingSolution solution;
  Schedule schedule;
  CompileOptions options;
  StageTimes stage_times;
  double estimated_fitness = 0.0;  ///< mapper objective (ps, lower = better)
  std::string mapper_name;
  GaStats ga_stats;  ///< populated when the mapper reports convergence

  /// The lowered instruction-stream artifact, when options.backend selected
  /// a lowering backend (nullptr otherwise). Shared: cache tiers and wire
  /// frames hand out the same immutable stream without copying it.
  std::shared_ptr<const InstructionStream> stream;
};

/// PIMCOMP's compiler driver: node partitioning -> weight replicating +
/// core mapping -> dataflow scheduling (paper Fig 3), each stage resolved
/// through the registries in core/pipeline.hpp. Construct once per
/// (model, hardware) pair and call compile() per scenario; for multi-
/// scenario batches prefer CompilerSession (core/session.hpp), which reuses
/// the partitioned workload across scenarios.
class Compiler {
 public:
  /// Takes ownership of the graph; finalizes it if needed.
  Compiler(Graph graph, HardwareConfig hw);

  const Graph& graph() const { return graph_; }
  const HardwareConfig& hardware() const { return hw_; }

  /// Runs the full backend. Throws CapacityError when the model cannot fit
  /// the configured core count and ConfigError for unknown registry keys.
  /// `observer` (optional) receives per-stage begin/end callbacks.
  CompileResult compile(const CompileOptions& options,
                        PipelineObserver* observer = nullptr) const;

  /// Convenience: simulate a compiled result on the cycle-accurate
  /// simulator at its compiled parallelism degree.
  SimReport simulate(const CompileResult& result) const;

 private:
  Graph graph_;
  HardwareConfig hw_;
};

/// Picks a core count that fits the model with `headroom` slack for
/// replication, rounded to whole chips (helper for examples/benches).
/// Finalized graphs are measured in place; only unfinalized inputs pay for
/// a finalizing copy.
HardwareConfig fit_core_count(const Graph& graph, HardwareConfig hw,
                              double headroom = 3.0);

}  // namespace pimcomp

#endif  // PIMCOMP_CORE_COMPILER_HPP
