#ifndef PIMCOMP_CORE_STREAM_PRINTER_HPP
#define PIMCOMP_CORE_STREAM_PRINTER_HPP

#include <string>

#include "graph/graph.hpp"
#include "schedule/operation.hpp"

namespace pimcomp {

/// Renders a core's static operation sequence as a PUMA-style instruction
/// listing (the "instruction flow" output of the paper's Fig 3). Example:
///
///   core 3 (214 ops)
///     0000  LOAD   conv1            1536 B
///     0001  MVM    conv1   ag=17  win=0   8 xbars
///     0002  VFU    conv1   128 elems  [wait ag=17]
///     0003  SEND   conv1   -> core 5  256 B
///
/// `max_ops` truncates long streams (0 = unlimited).
std::string print_core_stream(const Schedule& schedule, const Graph& graph,
                              int core, int max_ops = 64);

/// Whole-schedule summary: per-core op counts and byte totals.
std::string print_schedule_summary(const Schedule& schedule);

}  // namespace pimcomp

#endif  // PIMCOMP_CORE_STREAM_PRINTER_HPP
