#ifndef PIMCOMP_CORE_PIPELINE_HPP
#define PIMCOMP_CORE_PIPELINE_HPP

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/cancel.hpp"
#include "core/compiler.hpp"
#include "mapping/fitness.hpp"
#include "mapping/mapper.hpp"
#include "schedule/operation.hpp"

namespace pimcomp {

/// Names of the built-in pipeline stages, in execution order. Observers key
/// on these strings; StageTimes rows map to them one-to-one.
namespace stage_names {
inline constexpr const char kPartitioning[] = "partitioning";
inline constexpr const char kMapping[] = "mapping";
inline constexpr const char kScheduling[] = "scheduling";
inline constexpr const char kLowering[] = "lowering";  ///< backend lowering
}  // namespace stage_names

/// Wall-clock seconds elapsed since `start` — shared by every place that
/// measures a stage (the pipeline's stage loop and the session's
/// out-of-loop partitioning timing), so they can never diverge.
inline double seconds_since(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// What an observer learns about one stage execution.
struct StageInfo {
  std::string stage;        ///< stage name (see stage_names)
  std::string scenario;     ///< label of the scenario ("" when single-shot)
  int scenario_index = -1;  ///< position in the session batch (-1 single-shot)
  double seconds = 0.0;     ///< wall-clock duration (on_stage_end only)
  std::uint64_t tag = 0;    ///< caller-chosen job tag (0 = untagged; see
                            ///< JobOptions::tag in core/session.hpp)
};

/// Names of CompilerSession's two cache layers, as reported in CacheEvent.
namespace cache_names {
inline constexpr const char kWorkload[] = "workload";  ///< partitioned Workload
inline constexpr const char kMapping[] = "mapping";    ///< full CompileResult
}  // namespace cache_names

/// One cache hit (or store) inside a CompilerSession: a scenario reused a
/// partitioned workload or a whole mapping result instead of recomputing it
/// — or persisted a freshly computed one.
struct CacheEvent {
  std::string cache;        ///< cache layer (see cache_names)
  std::string scenario;     ///< label of the scenario ("" when single-shot)
  int scenario_index = -1;  ///< position in the session batch (-1 single-shot)
  std::uint64_t hits = 0;   ///< session-lifetime hit count of that cache
                            ///< (store count for on_cache_store)
  std::uint64_t tag = 0;    ///< caller-chosen job tag (0 = untagged)
  std::string source;       ///< tier that served/accepted the entry
                            ///< (cache_sources:: "memory" / "disk")
};

/// Per-stage callbacks around the pipeline's stage loop. Default methods are
/// no-ops so observers override only what they need. This subsumes the old
/// ad-hoc StageTimes bookkeeping: timings are recorded by the same loop that
/// fires these callbacks. Callbacks are always paired: a stage that throws
/// still fires on_stage_end before the exception propagates.
///
/// Thread safety: a parallel CompilerSession (set_jobs > 1) serializes every
/// callback behind one mutex, so observer implementations never run
/// concurrently with themselves — but callbacks from different scenarios
/// interleave in nondeterministic order.
class PipelineObserver {
 public:
  virtual ~PipelineObserver() = default;
  virtual void on_stage_begin(const StageInfo& info) { (void)info; }
  virtual void on_stage_end(const StageInfo& info) { (void)info; }
  /// Fired by CompilerSession when one of its caches satisfies a scenario;
  /// `event.source` says which tier (in-process memory or the persistent
  /// disk store) produced the artifact.
  virtual void on_cache_hit(const CacheEvent& event) { (void)event; }
  /// Fired by CompilerSession when a freshly computed mapping result is
  /// written into its cache; `event.source` is the deepest tier that newly
  /// accepted it ("disk" when the persistent tier took the artifact).
  virtual void on_cache_store(const CacheEvent& event) { (void)event; }
};

/// Mutable state threaded through the stage loop. Stages read what earlier
/// stages produced and fill in their own slot.
struct PipelineContext {
  const Graph* graph = nullptr;
  const HardwareConfig* hardware = nullptr;
  const CompileOptions* options = nullptr;

  /// Scenario identity forwarded to observer callbacks.
  std::string scenario_label;
  int scenario_index = -1;

  /// Caller-chosen job tag forwarded verbatim to observer callbacks (how
  /// the compile server routes a shared session's event stream back to the
  /// request that owns each job). 0 = untagged.
  std::uint64_t tag = 0;

  /// Cooperative cancellation flag, polled by run_pipeline() before every
  /// stage and by the GA between generations (not owned; nullptr = the
  /// compilation cannot be cancelled). A cancelled compilation throws
  /// CancelledError instead of producing a result.
  const CancelToken* cancel = nullptr;

  /// Stage 1 output. Pre-seeding this (CompilerSession's workload cache)
  /// elides the partitioning stage entirely.
  std::shared_ptr<const Workload> workload;

  // Stage 2+3 outputs.
  std::optional<MappingSolution> solution;
  std::string mapper_name;
  GaStats ga_stats;
  double fitness = 0.0;

  // Stage 4 output.
  Schedule schedule;

  /// Fingerprint binding stamped into the lowered stream (the session's
  /// mapping cache key; 0 when the caller carries no cache identity).
  std::uint64_t stream_binding = 0;

  /// Stage 5 output (only when options->backend selects a backend).
  std::shared_ptr<const InstructionStream> stream;

  StageTimes stage_times;
};

/// One pass of the compilation pipeline. Stages are composed by
/// build_stages() and driven by run_pipeline()'s generic loop.
class Stage {
 public:
  virtual ~Stage() = default;
  virtual std::string name() const = 0;
  virtual void run(PipelineContext& ctx) = 0;
};

/// A mode's dataflow generator paired with its fitness estimator (the mapper
/// objective of paper Figs 5/6 belongs to the same mode as the dataflow it
/// predicts). Implementations self-register with SchedulerRegistry.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Strategy name for reports ("ht-dataflow", "ll-dataflow", ...).
  virtual std::string name() const = 0;

  /// Generates the per-core operation streams for a mapped solution.
  virtual Schedule build(const MappingSolution& solution,
                         const CompileOptions& options) const = 0;

  /// Mode-specific mapper objective on a finished solution (picoseconds,
  /// lower is better).
  virtual double estimate_fitness(const Workload& workload,
                                  const MappingSolution& solution,
                                  const FitnessParams& params) const = 0;
};

/// String-keyed factory of replicating+mapping strategies. Implementations
/// register from their own translation unit via PIMCOMP_REGISTER_MAPPER, so
/// adding a mapper never touches src/core/.
class MapperRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Mapper>(const CompileOptions&)>;

  /// Registers a factory under `key`; returns true (static-init friendly).
  /// Throws ConfigError when the key is already taken.
  static bool add(const std::string& key, Factory factory);

  /// Instantiates the mapper registered under `key`; throws ConfigError for
  /// unknown keys, listing what is registered.
  static std::unique_ptr<Mapper> create(const std::string& key,
                                        const CompileOptions& options);

  static bool contains(const std::string& key);

  /// Registered keys, sorted (the CLI's --list-mappers).
  static std::vector<std::string> keys();
};

/// String-keyed factory of dataflow schedulers ("ht", "ll", ...).
class SchedulerRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Scheduler>()>;

  static bool add(const std::string& key, Factory factory);
  static std::unique_ptr<Scheduler> create(const std::string& key);
  static bool contains(const std::string& key);
  static std::vector<std::string> keys();
};

#define PIMCOMP_PIPELINE_CONCAT_INNER(a, b) a##b
#define PIMCOMP_PIPELINE_CONCAT(a, b) PIMCOMP_PIPELINE_CONCAT_INNER(a, b)

/// Self-registration hooks: one invocation at namespace scope in the
/// strategy's own .cpp registers it for the whole program.
#define PIMCOMP_REGISTER_MAPPER(key, factory)                       \
  [[maybe_unused]] static const bool PIMCOMP_PIPELINE_CONCAT(       \
      pimcomp_mapper_registered_, __COUNTER__) =                    \
      ::pimcomp::MapperRegistry::add(key, factory)

#define PIMCOMP_REGISTER_SCHEDULER(key, factory)                    \
  [[maybe_unused]] static const bool PIMCOMP_PIPELINE_CONCAT(       \
      pimcomp_scheduler_registered_, __COUNTER__) =                 \
      ::pimcomp::SchedulerRegistry::add(key, factory)

/// Composes the stage list for `ctx`: partitioning (skipped when
/// ctx.workload is pre-seeded), then mapping and scheduling resolved from
/// the registries, then — when options->backend is non-empty — the
/// lowering stage resolved from BackendRegistry. Throws ConfigError for
/// unknown registry keys.
std::vector<std::unique_ptr<Stage>> build_stages(const PipelineContext& ctx);

/// Resolves every registry key of `options` (mapper, scheduler, and the
/// backend when one is selected) without instantiating anything: the
/// fail-fast check build_stages() performs, callable before paying for
/// node partitioning. Throws ConfigError for unknown keys (and reports any
/// duplicate registrations recorded at static initialization).
void validate_strategies(const CompileOptions& options);

/// Drives the stage loop: per stage, fires observer begin/end callbacks,
/// times the run, and accumulates StageTimes; then assembles the
/// CompileResult. `observer` may be nullptr.
CompileResult run_pipeline(PipelineContext ctx, PipelineObserver* observer);

}  // namespace pimcomp

#endif  // PIMCOMP_CORE_PIPELINE_HPP
