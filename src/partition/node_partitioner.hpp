#ifndef PIMCOMP_PARTITION_NODE_PARTITIONER_HPP
#define PIMCOMP_PARTITION_NODE_PARTITIONER_HPP

#include <cstdint>
#include <string>

#include "arch/hardware_config.hpp"
#include "graph/graph.hpp"

namespace pimcomp {

/// Node-partitioning result for one crossbar (CONV/FC) node: the lowered
/// weight-matrix geometry and its Array-Group decomposition (paper §IV-B).
struct NodePartition {
  NodeId node = -1;

  // Lowered weight matrix: each convolution kernel flattens to one column.
  int matrix_rows = 0;  ///< kh * kw * Cin (FC: flattened input length)
  int matrix_cols = 0;  ///< Cout (FC: output units)

  // Array-Group decomposition.
  int row_slices = 0;    ///< ceil(matrix_rows / xbar_rows)
  int col_chunks = 0;    ///< chunks so one AG fits a core's crossbar budget
  int xbars_per_ag = 0;  ///< crossbars in one (full) AG
  int cols_per_chunk = 0;  ///< output columns per chunk (last may be smaller)

  /// Input sliding windows per inference (Hout * Wout; 1 for FC).
  int windows = 0;

  /// Output feature geometry (needed by LL receptive-field scheduling).
  int out_height = 0;
  int out_width = 0;

  int ags_per_replica() const { return row_slices * col_chunks; }
  int xbars_per_replica() const { return ags_per_replica() * xbars_per_ag; }

  /// Columns actually produced by chunk `cc` (the last chunk may be narrow).
  int chunk_cols(int cc) const {
    const int begin = cc * cols_per_chunk;
    const int end = begin + cols_per_chunk;
    return (end > matrix_cols ? matrix_cols : end) - begin;
  }

  /// MVM operations per inference for one replica covering all windows.
  std::int64_t mvms_per_inference() const {
    return static_cast<std::int64_t>(windows) * ags_per_replica();
  }

  std::string to_string() const;
};

/// Partitions one crossbar node (throws ConfigError for non-crossbar nodes).
NodePartition partition_node(const Graph& graph, NodeId node,
                             const HardwareConfig& hw);

}  // namespace pimcomp

#endif  // PIMCOMP_PARTITION_NODE_PARTITIONER_HPP
