#ifndef PIMCOMP_PARTITION_WORKLOAD_HPP
#define PIMCOMP_PARTITION_WORKLOAD_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "arch/hardware_config.hpp"
#include "graph/graph.hpp"
#include "partition/node_partitioner.hpp"

namespace pimcomp {

/// The complete node-partitioning stage output: per-crossbar-node partitions
/// plus aggregate capacity facts. This is the hand-off structure between
/// stage 1 (node partitioning) and stages 2+3 (replicating + mapping).
class Workload {
 public:
  /// Runs node partitioning over every CONV/FC node of a finalized graph.
  /// Throws CapacityError if even a single replica of every node exceeds
  /// the machine's total crossbar budget.
  Workload(const Graph& graph, const HardwareConfig& hw);

  const Graph& graph() const { return *graph_; }
  const HardwareConfig& hardware() const { return hw_; }

  /// Partitions in graph topological order (crossbar nodes only).
  const std::vector<NodePartition>& partitions() const { return partitions_; }
  int partition_count() const { return static_cast<int>(partitions_.size()); }

  /// Partition lookup by graph node id; throws if the node is not a
  /// crossbar node.
  const NodePartition& partition_of(NodeId node) const;
  bool has_partition(NodeId node) const;

  /// Dense partition index for a node id (-1 when not a crossbar node).
  int partition_index(NodeId node) const;

  /// Crossbars required for exactly one replica of every node.
  std::int64_t min_xbars_required() const { return min_xbars_; }

  /// Total crossbars available on the configured hardware.
  std::int64_t total_xbars_available() const {
    return static_cast<std::int64_t>(hw_.core_count) * hw_.xbars_per_core;
  }

  /// Smallest core count (rounded up to whole chips) on which one replica of
  /// every node fits with `headroom` spare capacity factor (>= 1.0).
  int recommended_core_count(double headroom = 2.0) const;

  /// Crossbars for one replica of every node of a finalized graph, computed
  /// without materializing a Workload (capacity sizing probes). The result
  /// is independent of hw.core_count.
  static std::int64_t min_xbars_for(const Graph& graph,
                                    const HardwareConfig& hw);

  /// recommended_core_count() on a bare crossbar requirement.
  static int recommend_cores(std::int64_t min_xbars, const HardwareConfig& hw,
                             double headroom);

  /// Upper bound on useful replication for a node: replicas beyond the
  /// window count can never be busy.
  int max_replication(NodeId node) const;

  std::string to_string() const;

 private:
  const Graph* graph_;
  HardwareConfig hw_;
  std::vector<NodePartition> partitions_;
  std::vector<int> partition_index_;  // by node id, -1 for non-crossbar
  std::int64_t min_xbars_ = 0;
};

}  // namespace pimcomp

#endif  // PIMCOMP_PARTITION_WORKLOAD_HPP
