#include "partition/node_partitioner.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace pimcomp {

std::string NodePartition::to_string() const {
  std::ostringstream oss;
  oss << "partition(node=" << node << " matrix=" << matrix_rows << "x"
      << matrix_cols << " row_slices=" << row_slices
      << " col_chunks=" << col_chunks << " xbars/AG=" << xbars_per_ag
      << " windows=" << windows << ")";
  return oss.str();
}

NodePartition partition_node(const Graph& graph, NodeId node_id,
                             const HardwareConfig& hw) {
  const Node& node = graph.node(node_id);
  PIMCOMP_CHECK(node.is_crossbar(),
                "partition_node requires a CONV or FC node");

  NodePartition p;
  p.node = node_id;

  if (node.type == OpType::kConv) {
    const TensorShape in = graph.node(node.inputs[0]).output_shape;
    p.matrix_rows = node.conv.kernel_h * node.conv.kernel_w * in.channels;
    p.matrix_cols = node.conv.out_channels;
    p.out_height = node.output_shape.height;
    p.out_width = node.output_shape.width;
  } else {  // FC: a 1x1-output convolution over the flattened input.
    const TensorShape in = graph.node(node.inputs[0]).output_shape;
    p.matrix_rows = static_cast<int>(in.elements());
    p.matrix_cols = node.fc_units;
    p.out_height = 1;
    p.out_width = 1;
  }
  p.windows = p.out_height * p.out_width;

  const int logical_cols = hw.logical_cols_per_xbar();
  const int xbars_full_width = ceil_div(p.matrix_cols, logical_cols);
  p.row_slices = ceil_div(p.matrix_rows, hw.logical_rows_per_xbar());
  // Chunk columns so one AG (= one row slice of one chunk) fits in a core.
  p.col_chunks = ceil_div(xbars_full_width, hw.xbars_per_core);
  const int xbars_per_chunk = ceil_div(xbars_full_width, p.col_chunks);
  p.xbars_per_ag = xbars_per_chunk;
  p.cols_per_chunk = xbars_per_chunk * logical_cols;

  PIMCOMP_ASSERT(p.xbars_per_ag <= hw.xbars_per_core,
                 "AG exceeds a core's crossbar budget");
  PIMCOMP_ASSERT(p.col_chunks * p.cols_per_chunk >= p.matrix_cols,
                 "column chunks must cover the weight matrix");
  return p;
}

}  // namespace pimcomp
