#include "partition/workload.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace pimcomp {

Workload::Workload(const Graph& graph, const HardwareConfig& hw)
    : graph_(&graph), hw_(hw) {
  PIMCOMP_CHECK(graph.finalized(), "workload requires a finalized graph");
  hw.validate();

  partition_index_.assign(static_cast<std::size_t>(graph.node_count()), -1);
  for (const Node& node : graph.nodes()) {
    if (!node.is_crossbar()) continue;
    partition_index_[static_cast<std::size_t>(node.id)] =
        static_cast<int>(partitions_.size());
    partitions_.push_back(partition_node(graph, node.id, hw));
    min_xbars_ += partitions_.back().xbars_per_replica();
  }
  PIMCOMP_CHECK(!partitions_.empty(),
                "graph has no CONV/FC nodes to map to crossbars");

  if (min_xbars_ > total_xbars_available()) {
    std::ostringstream oss;
    oss << "network '" << graph.name() << "' needs " << min_xbars_
        << " crossbars for one replica of every node but the hardware has "
        << total_xbars_available() << " (" << hw.core_count << " cores x "
        << hw.xbars_per_core << "); increase core_count to at least "
        << ceil_div<std::int64_t>(min_xbars_, hw.xbars_per_core);
    throw CapacityError(oss.str());
  }
}

const NodePartition& Workload::partition_of(NodeId node) const {
  const int index = partition_index(node);
  PIMCOMP_CHECK(index >= 0, "node is not a crossbar node");
  return partitions_[static_cast<std::size_t>(index)];
}

bool Workload::has_partition(NodeId node) const {
  return partition_index(node) >= 0;
}

int Workload::partition_index(NodeId node) const {
  PIMCOMP_ASSERT(node >= 0 && node < graph_->node_count(),
                 "node id out of range");
  return partition_index_[static_cast<std::size_t>(node)];
}

int Workload::recommended_core_count(double headroom) const {
  return recommend_cores(min_xbars_, hw_, headroom);
}

std::int64_t Workload::min_xbars_for(const Graph& graph,
                                     const HardwareConfig& hw) {
  PIMCOMP_CHECK(graph.finalized(), "min_xbars_for requires a finalized graph");
  std::int64_t min_xbars = 0;
  for (const Node& node : graph.nodes()) {
    if (!node.is_crossbar()) continue;
    min_xbars += partition_node(graph, node.id, hw).xbars_per_replica();
  }
  return min_xbars;
}

int Workload::recommend_cores(std::int64_t min_xbars,
                              const HardwareConfig& hw, double headroom) {
  PIMCOMP_CHECK(headroom >= 1.0, "headroom must be >= 1.0");
  const auto needed =
      static_cast<std::int64_t>(static_cast<double>(min_xbars) * headroom);
  const std::int64_t cores = ceil_div<std::int64_t>(needed, hw.xbars_per_core);
  const std::int64_t chips = ceil_div<std::int64_t>(cores, hw.cores_per_chip);
  return checked_int(chips * hw.cores_per_chip);
}

int Workload::max_replication(NodeId node) const {
  return partition_of(node).windows;
}

std::string Workload::to_string() const {
  std::ostringstream oss;
  oss << "workload '" << graph_->name() << "': " << partitions_.size()
      << " crossbar nodes, min " << min_xbars_ << " crossbars ("
      << total_xbars_available() << " available)\n";
  for (const NodePartition& p : partitions_) {
    oss << "  " << graph_->node(p.node).name << ": " << p.to_string() << '\n';
  }
  return oss.str();
}

}  // namespace pimcomp
