#include "partition/array_group.hpp"

#include <sstream>

namespace pimcomp {

std::string AgInstance::to_string() const {
  std::ostringstream oss;
  oss << "AG(node=" << node << " r=" << replica << " rs=" << row_slice
      << " cc=" << col_chunk << " core=" << core << " xbars=" << xbars << ")";
  return oss.str();
}

}  // namespace pimcomp
