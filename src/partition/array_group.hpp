#ifndef PIMCOMP_PARTITION_ARRAY_GROUP_HPP
#define PIMCOMP_PARTITION_ARRAY_GROUP_HPP

#include <cstdint>
#include <string>

#include "graph/node.hpp"

namespace pimcomp {

/// One Array Group *instance* after replication and core mapping: a bundle
/// of crossbars that receives the same input vector slice and is always
/// co-located on one core (paper Section IV-B).
///
/// The paper's Fig 4 defines an AG as one crossbar-height slice of the
/// weight matrix spanning all Cout columns. When Cout is so large that one
/// such slice exceeds a core's crossbar budget we additionally chunk
/// columns, so an AG is identified by (replica, row_slice, col_chunk); AGs
/// that share (replica, col_chunk) accumulate their partial sums.
struct AgInstance {
  NodeId node = -1;
  int replica = 0;    ///< which weight replica this AG belongs to
  int row_slice = 0;  ///< vertical slice index of the weight matrix
  int col_chunk = 0;  ///< horizontal chunk index of the weight matrix
  int core = -1;      ///< core this AG's crossbars are mapped to
  int xbars = 0;      ///< physical crossbars in this AG
  int cols = 0;       ///< output columns produced by this AG

  /// Stable ordering key inside a node: replica-major, then row, then chunk.
  std::int64_t order_key(int row_slices, int col_chunks) const {
    return (static_cast<std::int64_t>(replica) * row_slices + row_slice) *
               col_chunks +
           col_chunk;
  }

  std::string to_string() const;
};

}  // namespace pimcomp

#endif  // PIMCOMP_PARTITION_ARRAY_GROUP_HPP
