// Island-model GA scaling: mapping-stage wall clock across an
// islands x threads sweep on inception-v3 and resnet18 (the two Table II
// models whose mapping budgets bracket the zoo). Every cell runs the SAME
// (seed, islands) trajectory — results are bit-reproducible per cell and
// the thread axis changes wall clock only — so the sweep separates the two
// claims of the island rewrite:
//
//   * parallel speedup: a fixed islands>1 row across the thread axis
//     (target >=4x on inception-v3 mapping at >=4 islands on a machine
//     with >=4 hardware threads);
//   * equal-or-better quality: the final fitness column at islands>1 vs
//     the islands=1 sequential trajectory at the same seed and budget.
//
// PIMCOMP_BENCH_JSON=path writes the cells as a machine-readable artifact;
// bench/ga_scaling_baseline.json holds reference numbers (wall clock is
// machine-dependent and deliberately not CI-gated; the CI smoke leg checks
// the artifact's shape and the quality column instead).
//
// Extra knobs on top of bench_common.hpp's:
//   PIMCOMP_BENCH_GA_ISLANDS   comma list of island counts (default 1,2,4,8)
//   PIMCOMP_BENCH_GA_THREADS   comma list of pool sizes (default "1" plus
//                              the hardware thread count)

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/json.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "mapping/genetic_mapper.hpp"

namespace {

std::vector<int> int_list_from_env(const char* name,
                                   std::vector<int> fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  std::vector<int> values;
  for (const std::string& item : pimcomp::split(raw, ',')) {
    const int value = std::atoi(item.c_str());
    if (value >= 1) values.push_back(value);
  }
  return values.empty() ? fallback : values;
}

}  // namespace

int main() {
  using namespace pimcomp;
  using namespace pimcomp::bench;
  const BenchConfig cfg = BenchConfig::from_env();

  const std::vector<int> island_counts =
      int_list_from_env("PIMCOMP_BENCH_GA_ISLANDS", {1, 2, 4, 8});
  std::vector<int> thread_counts = int_list_from_env(
      "PIMCOMP_BENCH_GA_THREADS",
      ThreadPool::hardware_threads() > 1
          ? std::vector<int>{1, ThreadPool::hardware_threads()}
          : std::vector<int>{1});

  Table table("Island GA mapping scaling, pop " +
              std::to_string(cfg.ga_population) + " x " +
              std::to_string(cfg.ga_generations) + " generations, seed " +
              std::to_string(cfg.seed));
  table.set_header({"model", "islands", "threads", "mapping s", "speedup",
                    "final fitness", "evals"});

  Json rows = Json::array();
  bool quality_ok = true;
  for (const std::string& name : {std::string("inception-v3"),
                                  std::string("resnet18")}) {
    Graph graph = bench_model(name, cfg);
    const HardwareConfig hw = bench_hardware(graph);
    const Workload workload(graph, hw);

    double sequential_seconds = 0.0;   // islands=1, threads=1 cell
    double sequential_fitness = 0.0;
    for (const int islands : island_counts) {
      for (const int threads : thread_counts) {
        GaConfig config;
        config.population = cfg.ga_population;
        config.generations = cfg.ga_generations;
        config.islands = islands;
        GeneticMapper mapper(config);
        ThreadPool pool(threads);
        MapperOptions options;
        options.mode = PipelineMode::kHighThroughput;
        options.seed = cfg.seed;
        options.pool = &pool;

        const auto t0 = std::chrono::steady_clock::now();
        mapper.map(workload, options);
        const double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        const GaStats& stats = mapper.last_stats();
        if (islands == 1 && threads == thread_counts.front()) {
          sequential_seconds = seconds;
          sequential_fitness = stats.final_best;
        }
        const double speedup =
            seconds > 0.0 ? sequential_seconds / seconds : 0.0;
        if (stats.final_best > sequential_fitness) quality_ok = false;

        table.add_row({name, std::to_string(islands),
                       std::to_string(threads), format_double(seconds, 3),
                       format_ratio(speedup),
                       format_double(stats.final_best, 1),
                       std::to_string(stats.evaluations)});
        Json row = Json::object();
        row["model"] = name;
        row["islands"] = islands;
        row["threads"] = threads;
        row["mapping_s"] = seconds;
        row["speedup_vs_sequential"] = speedup;
        row["final_fitness"] = stats.final_best;
        row["evaluations"] = stats.evaluations;
        rows.push_back(std::move(row));
        std::cout << "." << std::flush;
      }
    }
  }
  std::cout << "\n\n";
  table.print();
  std::cout << "\nquality: island finals "
            << (quality_ok ? "<=" : "NOT <=")
            << " the sequential (islands=1) final at equal seed\n";
  std::cout << "hardware threads: " << ThreadPool::hardware_threads()
            << " (speedup rows are bounded by the machine; the determinism "
               "contract is exercised at every cell regardless)\n";

  if (const char* json_path = std::getenv("PIMCOMP_BENCH_JSON")) {
    Json artifact = Json::object();
    Json config = Json::object();
    config["population"] = cfg.ga_population;
    config["generations"] = cfg.ga_generations;
    config["seed"] = static_cast<std::int64_t>(cfg.seed);
    config["full"] = cfg.full;
    artifact["config"] = std::move(config);
    artifact["hardware_threads"] = ThreadPool::hardware_threads();
    artifact["cells"] = std::move(rows);
    artifact["quality_ok"] = quality_ok;
    try {
      json_to_file(artifact, json_path);
      std::cout << "wrote scaling cells to " << json_path << '\n';
    } catch (const std::exception& e) {
      std::cerr << "failed to write " << json_path << ": " << e.what()
                << '\n';
      return 1;
    }
  }
  return quality_ok ? 0 : 1;
}
