// Reproduces Fig 9: energy breakdown (leakage + dynamic) of PIMCOMP vs the
// PUMA-like baseline at parallelism degree 20, both modes, normalized to
// the baseline's total energy per network.

#include <iostream>

#include "bench_common.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace pimcomp;
  using namespace pimcomp::bench;
  const BenchConfig cfg = BenchConfig::from_env();
  constexpr int kParallelism = 20;

  // Paper reference: PIMCOMP's normalized total energy per network.
  const double paper_ht[] = {0.97, 1.06, 1.00, 0.99, 0.97};
  const double paper_ll[] = {0.55, 0.48, 0.70, 0.38, 0.69};

  for (PipelineMode mode :
       {PipelineMode::kHighThroughput, PipelineMode::kLowLatency}) {
    const bool ht = mode == PipelineMode::kHighThroughput;
    Table table("Fig 9 (" + to_string(mode) +
                "): energy normalized to PUMA-like total");
    table.set_header({"model", "puma leak", "puma dyn", "pimcomp leak",
                      "pimcomp dyn", "pimcomp total", "paper total"});

    int index = 0;
    for (const std::string& name : zoo::model_names()) {
      CompilerSession session = bench_session(name, cfg);

      const RunOutcome puma =
          run_one(session, bench_options(cfg, mode, kParallelism, "puma"));
      const RunOutcome ga =
          run_one(session, bench_options(cfg, mode, kParallelism, "ga"));

      const double base = puma.sim.total_energy();
      table.add_row(
          {name, format_double(puma.sim.leakage_energy / base, 2),
           format_double(puma.sim.dynamic_energy.total() / base, 2),
           format_double(ga.sim.leakage_energy / base, 2),
           format_double(ga.sim.dynamic_energy.total() / base, 2),
           format_ratio(ga.sim.total_energy() / base),
           format_ratio(ht ? paper_ht[index] : paper_ll[index])});
      ++index;
      std::cout << "." << std::flush;
    }
    std::cout << "\n\n";
    table.print();
    std::cout << '\n';
  }
  std::cout << "Paper headline: dynamic energy is workload-bound and nearly "
               "equal; PIMCOMP cuts LL static energy by 58.3% on average by "
               "shortening the overall runtime.\n";
  return 0;
}
