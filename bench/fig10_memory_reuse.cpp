// Reproduces Fig 10: the effect of the on-chip memory reuse levels (naive /
// ADD-reuse / AG-reuse). HT mode reports global-memory traffic (the paper's
// "global memory access can be reduced by 47.8% with AG-reuse"); LL mode
// reports the time-weighted average local-memory occupancy against the
// 64 kB design target.

#include <iostream>

#include "bench_common.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace pimcomp;
  using namespace pimcomp::bench;
  const BenchConfig cfg = BenchConfig::from_env();
  constexpr int kParallelism = 20;
  const MemoryPolicy policies[] = {MemoryPolicy::kNaive,
                                   MemoryPolicy::kAddReuse,
                                   MemoryPolicy::kAgReuse};

  // Paper reference (avg local usage, normalized to naive).
  const double paper_ht_add[] = {0.84, 0.79, 0.82, 0.78, 0.75};
  const double paper_ht_ag[] = {0.62, 0.44, 0.58, 0.71, 0.35};
  const double paper_ll_add[] = {0.95, 0.85, 0.76, 0.78, 0.76};
  const double paper_ll_ag[] = {0.82, 0.67, 0.50, 0.61, 0.63};

  // ---------------- HT mode: global memory traffic -------------------------
  {
    Table table(
        "Fig 10 (HT): global-memory traffic and avg local usage by policy");
    table.set_header({"model", "naive traffic (kB)", "add-reuse", "ag-reuse",
                      "naive avg (kB)", "add avg", "ag avg", "paper add/ag"});
    int index = 0;
    for (const std::string& name : zoo::model_names()) {
      Graph graph = bench_model(name, cfg);
      // Densely packed machine (the paper's fixed-size chips): per-core
      // working sets are what trigger the overflow spills AG-reuse avoids.
      const HardwareConfig hw =
          fit_core_count(graph, HardwareConfig::puma_default(), 1.25);
      CompilerSession session(std::move(graph), hw);
      double traffic[3] = {0, 0, 0};
      double avg_kb[3] = {0, 0, 0};
      for (int i = 0; i < 3; ++i) {
        const RunOutcome out = run_one(
            session, bench_options(cfg, PipelineMode::kHighThroughput,
                                   kParallelism, "ga", policies[i]));
        traffic[i] = static_cast<double>(out.sim.global_traffic_bytes) / 1024;
        avg_kb[i] = out.sim.avg_local_memory_bytes / 1024;
        std::cout << "." << std::flush;
      }
      table.add_row({name, format_double(traffic[0], 0),
                     format_ratio(traffic[1] / traffic[0]),
                     format_ratio(traffic[2] / traffic[0]),
                     format_double(avg_kb[0], 1),
                     format_ratio(avg_kb[1] / avg_kb[0]),
                     format_ratio(avg_kb[2] / avg_kb[0]),
                     format_ratio(paper_ht_add[index], 2) + " / " +
                         format_ratio(paper_ht_ag[index], 2)});
      ++index;
    }
    std::cout << "\n\n";
    table.print();
    std::cout << '\n';
  }

  // ---------------- LL mode: average local memory usage ---------------------
  {
    Table table("Fig 10 (LL): average local-memory usage by policy (kB)");
    table.set_header({"model", "naive", "add-reuse", "ag-reuse",
                      "ag/naive", "paper add/ag", "ag peak <= 64kB?"});
    int index = 0;
    for (const std::string& name : zoo::model_names()) {
      CompilerSession session = bench_session(name, cfg);
      double avg_kb[3] = {0, 0, 0};
      double ag_avg_within = 0;
      for (int i = 0; i < 3; ++i) {
        const RunOutcome out = run_one(
            session, bench_options(cfg, PipelineMode::kLowLatency,
                                   kParallelism, "ga", policies[i]));
        avg_kb[i] = out.sim.avg_local_memory_bytes / 1024;
        if (i == 2) ag_avg_within = avg_kb[i];
        std::cout << "." << std::flush;
      }
      table.add_row({name, format_double(avg_kb[0], 1),
                     format_double(avg_kb[1], 1), format_double(avg_kb[2], 1),
                     format_ratio(avg_kb[2] / avg_kb[0]),
                     format_ratio(paper_ll_add[index], 2) + " / " +
                         format_ratio(paper_ll_ag[index], 2),
                     ag_avg_within <= 64.0 ? "yes" : "NO"});
      ++index;
    }
    std::cout << "\n\n";
    table.print();
  }
  std::cout << "\nPaper headline: AG-reuse cuts HT global accesses by 47.8% "
               "on average and keeps the LL average local usage within the "
               "64 kB scratchpad.\n";
  return 0;
}
