// Reproduces Table I: hardware configuration with per-component power and
// area of the PUMA instantiation, plus the derived whole-chip aggregates.

#include <iostream>

#include "arch/area_model.hpp"
#include "arch/component_models.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace pimcomp;

  const HardwareConfig hw = HardwareConfig::puma_default();
  const ComponentTable components = build_component_table(hw);

  Table table("Table I: hardware configuration (PUMA instantiation)");
  table.set_header(
      {"Component", "Parameters", "Specification", "Power (mW)", "Area (mm2)"});
  for (const ComponentSpec* spec : components.rows()) {
    table.add_row({spec->name, spec->parameter, spec->specification,
                   format_double(spec->peak_power_mw, 2),
                   format_double(spec->area_mm2, spec->area_mm2 < 1 ? 3 : 2)});
  }
  table.print();

  std::cout << "\nPaper reference: PIMMU 1221.76 mW / 0.77 mm2; Core 1270.56"
               " mW / 1.01 mm2; Chip 56.79 W / 62.92 mm2.\n\n";

  const AreaReport area = compute_area(hw);
  std::cout << "Derived: core " << format_double(area.core_mm2, 2)
            << " mm2, router " << format_double(area.router_mm2, 2)
            << " mm2, chip " << format_double(area.chip_mm2, 2) << " mm2, "
            << area.chip_count << " chip(s) total "
            << format_double(area.total_mm2, 2) << " mm2\n";
  std::cout << "Leakage fractions: core "
            << format_double(100 * components.core.leakage_fraction, 1)
            << "%, chip "
            << format_double(100 * components.chip.leakage_fraction, 1)
            << "% (CACTI-lite / Orion-lite calibration, DESIGN.md §3)\n";
  return 0;
}
