// Google-benchmark micro-kernels: throughput of the individual compiler
// stages (partitioning, GA step, scheduling, simulation). These are the
// hot paths behind Table II's compile times.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "mapping/fitness.hpp"
#include "mapping/genetic_mapper.hpp"
#include "mapping/puma_mapper.hpp"
#include "schedule/ht_scheduler.hpp"
#include "schedule/ll_scheduler.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace pimcomp;

const Graph& resnet_graph() {
  static const Graph graph = zoo::resnet18(64);
  return graph;
}

const Workload& resnet_workload() {
  static const HardwareConfig hw =
      fit_core_count(resnet_graph(), HardwareConfig::puma_default(), 3.0);
  static const Workload workload(resnet_graph(), hw);
  return workload;
}

const MappingSolution& resnet_solution() {
  static const MappingSolution solution = [] {
    PumaMapper mapper;
    MapperOptions options;
    return mapper.map(resnet_workload(), options);
  }();
  return solution;
}

void BM_NodePartitioning(benchmark::State& state) {
  const Graph& graph = resnet_graph();
  const HardwareConfig hw =
      fit_core_count(graph, HardwareConfig::puma_default(), 3.0);
  for (auto _ : state) {
    Workload workload(graph, hw);
    benchmark::DoNotOptimize(workload.min_xbars_required());
  }
}
BENCHMARK(BM_NodePartitioning);

void BM_GraphConstructionZoo(benchmark::State& state) {
  for (auto _ : state) {
    Graph g = zoo::googlenet(64);
    benchmark::DoNotOptimize(g.node_count());
  }
}
BENCHMARK(BM_GraphConstructionZoo);

void BM_MapperRegistryCreate(benchmark::State& state) {
  const CompileOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MapperRegistry::create("puma", options));
  }
}
BENCHMARK(BM_MapperRegistryCreate);

// The session's workload-cache hot path: everything but node partitioning
// (compare against BM_NodePartitioning + this to see the cached saving).
void BM_SessionCachedCompile(benchmark::State& state) {
  const Graph& graph = resnet_graph();
  const HardwareConfig hw =
      fit_core_count(graph, HardwareConfig::puma_default(), 3.0);
  CompilerSession session(Graph(graph), hw);
  CompileOptions options;
  options.mapper = "puma";
  options.mode = PipelineMode::kHighThroughput;
  session.compile(options);  // warm the workload cache
  for (auto _ : state) {
    CompileResult result = session.compile(options);
    benchmark::DoNotOptimize(result.schedule.total_ops);
  }
}
BENCHMARK(BM_SessionCachedCompile);

void BM_HtFitnessEvaluation(benchmark::State& state) {
  const MappingSolution& solution = resnet_solution();
  const FitnessParams params =
      FitnessParams::from(resnet_workload().hardware(), 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ht_fitness(solution, params));
  }
}
BENCHMARK(BM_HtFitnessEvaluation);

void BM_LlFitnessEvaluation(benchmark::State& state) {
  const MappingSolution& solution = resnet_solution();
  const FitnessParams params =
      FitnessParams::from(resnet_workload().hardware(), 20);
  const LLFitnessContext context(resnet_workload());
  for (auto _ : state) {
    benchmark::DoNotOptimize(context.evaluate(solution, params));
  }
}
BENCHMARK(BM_LlFitnessEvaluation);

void BM_GaGeneration(benchmark::State& state) {
  GaConfig ga;
  ga.population = 20;
  ga.generations = static_cast<int>(state.range(0));
  for (auto _ : state) {
    GeneticMapper mapper(ga);
    MapperOptions options;
    MappingSolution s = mapper.map(resnet_workload(), options);
    benchmark::DoNotOptimize(s.total_xbars_used());
  }
}
BENCHMARK(BM_GaGeneration)->Arg(1)->Arg(8);

void BM_HtScheduling(benchmark::State& state) {
  const MappingSolution& solution = resnet_solution();
  for (auto _ : state) {
    Schedule s = schedule_ht(solution, {});
    benchmark::DoNotOptimize(s.total_ops);
  }
}
BENCHMARK(BM_HtScheduling);

void BM_LlScheduling(benchmark::State& state) {
  const MappingSolution& solution = resnet_solution();
  for (auto _ : state) {
    Schedule s = schedule_ll(solution, {});
    benchmark::DoNotOptimize(s.total_ops);
  }
}
BENCHMARK(BM_LlScheduling);

void BM_SimulatorThroughput(benchmark::State& state) {
  const MappingSolution& solution = resnet_solution();
  const Schedule schedule = schedule_ht(solution, {});
  SimOptions options;
  options.parallelism_degree = 20;
  const Simulator simulator(resnet_workload().hardware(), options);
  std::int64_t ops = 0;
  for (auto _ : state) {
    SimReport report = simulator.run(schedule);
    benchmark::DoNotOptimize(report.makespan);
    ops += schedule.total_ops;
  }
  state.SetItemsProcessed(ops);
}
BENCHMARK(BM_SimulatorThroughput);

}  // namespace

BENCHMARK_MAIN();
