// Reproduces Table II: wall-clock compiling time per stage (node
// partitioning / replicating+mapping / dataflow scheduling) for the five
// networks under both modes. The paper uses GA population 100 with 200
// generations; this bench follows that by default (override with
// PIMCOMP_BENCH_POP / PIMCOMP_BENCH_GENS).
//
// Each model's HT+LL pair runs through the session's asynchronous job API
// (PIMCOMP_BENCH_JOBS resident workers, default one per hardware thread):
// the two scenarios share the cached partitioning and map concurrently, so
// the batch wall clock beats the summed per-scenario stage times.
//
// PIMCOMP_BENCH_JSON=path additionally writes the per-stage timings as a
// machine-readable artifact (one row per model+mode, plus totals and the
// GA budget) — CI uploads it on every run and fails when the total
// regresses >25% against the checked-in bench/table2_baseline.json.

#include <chrono>
#include <cstdlib>
#include <iostream>

#include "bench_common.hpp"
#include "common/json.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace pimcomp;
  using namespace pimcomp::bench;
  BenchConfig cfg = BenchConfig::from_env();
  // Table II is about compile time itself, so default to the paper's GA size.
  if (!std::getenv("PIMCOMP_BENCH_POP")) cfg.ga_population = 100;
  if (!std::getenv("PIMCOMP_BENCH_GENS")) cfg.ga_generations = 200;

  // Paper reference totals (seconds).
  const double paper_total_ht[] = {10.56, 12.96, 13.57, 13.71, 13.17};
  const double paper_total_ll[] = {8.48, 10.78, 13.58, 29.57, 40.21};

  Table table("Table II: compiling time (seconds), GA pop " +
              std::to_string(cfg.ga_population) + " x " +
              std::to_string(cfg.ga_generations) + " generations");
  table.set_header({"model", "mode", "partitioning", "replicating+mapping",
                    "scheduling", "total", "paper total"});

  double scenario_seconds = 0.0;  // summed per-scenario stage times
  double batch_seconds = 0.0;     // measured wall clock of the batches
  int jobs = 0;
  Json rows = Json::array();

  // Machine-speed yardstick for the CI regression gate: a fixed-budget
  // compile (immune to the PIMCOMP_BENCH_* knobs) whose cost scales with
  // the host exactly like the table itself, so the gate can compare
  // machine-normalized ratios instead of absolute seconds from whatever
  // runner CI landed on.
  double calibration_seconds = 0.0;
  {
    Graph graph = zoo::build("squeezenet", 64);
    HardwareConfig hw =
        fit_core_count(graph, HardwareConfig::puma_default(), 3.0);
    CompilerSession calibration(std::move(graph), hw);
    // ~100-150 ms of fixed work: small against the table, large against
    // scheduler noise, so the normalization itself is stable.
    for (const std::uint64_t seed : {101, 102, 103}) {
      CompileOptions options;
      options.mode = PipelineMode::kHighThroughput;
      options.parallelism_degree = 20;
      options.ga.population = 40;
      options.ga.generations = 80;
      options.seed = seed;
      calibration_seconds += calibration.compile(options).stage_times.total();
    }
  }

  int index = 0;
  for (const std::string& name : zoo::model_names()) {
    // One session per model: the HT and LL scenarios share the partitioned
    // workload and overlap on the session's resident workers.
    CompilerSession session = bench_session(name, cfg);
    session.set_jobs(cfg.jobs);
    jobs = session.jobs();

    const auto t0 = std::chrono::steady_clock::now();
    const CompileJob ht_job = session.submit(
        bench_options(cfg, PipelineMode::kHighThroughput, 20), "HT");
    const CompileJob ll_job = session.submit(
        bench_options(cfg, PipelineMode::kLowLatency, 20), "LL");
    ht_job.wait();
    ll_job.wait();
    batch_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    // Outside the timed region: wait() is idempotent and hands back
    // references, so no result is copied into the report path.
    for (const CompileJob* job : {&ht_job, &ll_job}) {
      const ScenarioOutcome& outcome = job->wait();
      if (!outcome.ok()) {
        std::cerr << name << " '" << outcome.label << "' failed: "
                  << outcome.error << '\n';
        continue;
      }
      const CompileResult& result = *outcome.result;
      const StageTimes& t = result.stage_times;
      scenario_seconds += t.total();
      const bool ht = result.options.mode == PipelineMode::kHighThroughput;
      table.add_row({name, ht ? "HT" : "LL",
                     t.partitioning > 0.0 ? format_double(t.partitioning, 3)
                                          : "(cached)",
                     format_double(t.mapping, 3),
                     format_double(t.scheduling, 3),
                     format_double(t.total(), 2),
                     format_double(ht ? paper_total_ht[index]
                                      : paper_total_ll[index],
                                   2)});
      Json row = Json::object();
      row["model"] = name;
      row["mode"] = ht ? "ht" : "ll";
      row["partitioning_s"] = t.partitioning;
      row["mapping_s"] = t.mapping;
      row["scheduling_s"] = t.scheduling;
      row["total_s"] = t.total();
      rows.push_back(std::move(row));
      std::cout << "." << std::flush;
    }
    ++index;
  }
  std::cout << "\n\n";
  table.print();
  std::cout << "\nbatch wall clock: " << format_double(batch_seconds, 2)
            << " s across " << jobs << " worker(s) vs "
            << format_double(scenario_seconds, 2)
            << " s of summed scenario stage time ("
            << format_ratio(scenario_seconds /
                            (batch_seconds > 0.0 ? batch_seconds : 1.0))
            << " speedup)\n";
  std::cout << "\nPaper observation: replicating+mapping dominates in HT "
               "mode while dataflow scheduling dominates in LL mode; the "
               "overall compiling time stays in tens of seconds.\n";

  if (const char* json_path = std::getenv("PIMCOMP_BENCH_JSON")) {
    Json artifact = Json::object();
    Json config = Json::object();
    config["population"] = cfg.ga_population;
    config["generations"] = cfg.ga_generations;
    config["jobs"] = jobs;
    config["seed"] = static_cast<std::int64_t>(cfg.seed);
    config["full"] = cfg.full;
    artifact["config"] = std::move(config);
    artifact["stages"] = std::move(rows);
    artifact["scenario_seconds"] = scenario_seconds;
    artifact["batch_wall_seconds"] = batch_seconds;
    artifact["calibration_seconds"] = calibration_seconds;
    try {
      json_to_file(artifact, json_path);
      std::cout << "wrote stage timings to " << json_path << '\n';
    } catch (const std::exception& e) {
      std::cerr << "failed to write " << json_path << ": " << e.what()
                << '\n';
      return 1;
    }
  }
  return 0;
}
