// Reproduces Table II: wall-clock compiling time per stage (node
// partitioning / replicating+mapping / dataflow scheduling) for the five
// networks under both modes. The paper uses GA population 100 with 200
// generations; this bench follows that by default (override with
// PIMCOMP_BENCH_POP / PIMCOMP_BENCH_GENS).

#include <cstdlib>
#include <iostream>

#include "bench_common.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace pimcomp;
  using namespace pimcomp::bench;
  BenchConfig cfg = BenchConfig::from_env();
  // Table II is about compile time itself, so default to the paper's GA size.
  if (!std::getenv("PIMCOMP_BENCH_POP")) cfg.ga_population = 100;
  if (!std::getenv("PIMCOMP_BENCH_GENS")) cfg.ga_generations = 200;

  // Paper reference totals (seconds).
  const double paper_total_ht[] = {10.56, 12.96, 13.57, 13.71, 13.17};
  const double paper_total_ll[] = {8.48, 10.78, 13.58, 29.57, 40.21};

  Table table("Table II: compiling time (seconds), GA pop " +
              std::to_string(cfg.ga_population) + " x " +
              std::to_string(cfg.ga_generations) + " generations");
  table.set_header({"model", "mode", "partitioning", "replicating+mapping",
                    "scheduling", "total", "paper total"});

  int index = 0;
  for (const std::string& name : zoo::model_names()) {
    // One session per model: the HT and LL scenarios share the partitioned
    // workload, so partitioning time is paid once per network.
    CompilerSession session = bench_session(name, cfg);
    session.enqueue(bench_options(cfg, PipelineMode::kHighThroughput, 20),
                    "HT");
    session.enqueue(bench_options(cfg, PipelineMode::kLowLatency, 20), "LL");
    const std::vector<CompileResult> results = session.compile_all();
    for (std::size_t i = 0; i < results.size(); ++i) {
      const StageTimes& t = results[i].stage_times;
      const bool ht =
          results[i].options.mode == PipelineMode::kHighThroughput;
      table.add_row({name, ht ? "HT" : "LL",
                     t.partitioning > 0.0 ? format_double(t.partitioning, 3)
                                          : "(cached)",
                     format_double(t.mapping, 3),
                     format_double(t.scheduling, 3),
                     format_double(t.total(), 2),
                     format_double(ht ? paper_total_ht[index]
                                      : paper_total_ll[index],
                                   2)});
      std::cout << "." << std::flush;
    }
    ++index;
  }
  std::cout << "\n\n";
  table.print();
  std::cout << "\nPaper observation: replicating+mapping dominates in HT "
               "mode while dataflow scheduling dominates in LL mode; the "
               "overall compiling time stays in tens of seconds.\n";
  return 0;
}
