// Reproduces Table II: wall-clock compiling time per stage (node
// partitioning / replicating+mapping / dataflow scheduling) for the five
// networks under both modes. The paper uses GA population 100 with 200
// generations; this bench follows that by default (override with
// PIMCOMP_BENCH_POP / PIMCOMP_BENCH_GENS).
//
// Each model's HT+LL pair is one parallel CompilerSession batch
// (PIMCOMP_BENCH_JOBS workers, default one per hardware thread): the two
// scenarios share the cached partitioning and map concurrently, so the
// batch wall clock beats the summed per-scenario stage times.

#include <chrono>
#include <cstdlib>
#include <iostream>

#include "bench_common.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace pimcomp;
  using namespace pimcomp::bench;
  BenchConfig cfg = BenchConfig::from_env();
  // Table II is about compile time itself, so default to the paper's GA size.
  if (!std::getenv("PIMCOMP_BENCH_POP")) cfg.ga_population = 100;
  if (!std::getenv("PIMCOMP_BENCH_GENS")) cfg.ga_generations = 200;

  // Paper reference totals (seconds).
  const double paper_total_ht[] = {10.56, 12.96, 13.57, 13.71, 13.17};
  const double paper_total_ll[] = {8.48, 10.78, 13.58, 29.57, 40.21};

  Table table("Table II: compiling time (seconds), GA pop " +
              std::to_string(cfg.ga_population) + " x " +
              std::to_string(cfg.ga_generations) + " generations");
  table.set_header({"model", "mode", "partitioning", "replicating+mapping",
                    "scheduling", "total", "paper total"});

  double scenario_seconds = 0.0;  // summed per-scenario stage times
  double batch_seconds = 0.0;     // measured wall clock of the batches
  int jobs = 0;

  int index = 0;
  for (const std::string& name : zoo::model_names()) {
    // One session per model: the HT and LL scenarios share the partitioned
    // workload and fan out across the session's workers.
    CompilerSession session = bench_session(name, cfg);
    session.set_jobs(cfg.jobs);
    jobs = session.jobs();
    session.enqueue(bench_options(cfg, PipelineMode::kHighThroughput, 20),
                    "HT");
    session.enqueue(bench_options(cfg, PipelineMode::kLowLatency, 20), "LL");

    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<ScenarioOutcome> outcomes = session.compile_all();
    batch_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    for (const ScenarioOutcome& outcome : outcomes) {
      if (!outcome.ok()) {
        std::cerr << name << " '" << outcome.label << "' failed: "
                  << outcome.error << '\n';
        continue;
      }
      const CompileResult& result = *outcome.result;
      const StageTimes& t = result.stage_times;
      scenario_seconds += t.total();
      const bool ht = result.options.mode == PipelineMode::kHighThroughput;
      table.add_row({name, ht ? "HT" : "LL",
                     t.partitioning > 0.0 ? format_double(t.partitioning, 3)
                                          : "(cached)",
                     format_double(t.mapping, 3),
                     format_double(t.scheduling, 3),
                     format_double(t.total(), 2),
                     format_double(ht ? paper_total_ht[index]
                                      : paper_total_ll[index],
                                   2)});
      std::cout << "." << std::flush;
    }
    ++index;
  }
  std::cout << "\n\n";
  table.print();
  std::cout << "\nbatch wall clock: " << format_double(batch_seconds, 2)
            << " s across " << jobs << " worker(s) vs "
            << format_double(scenario_seconds, 2)
            << " s of summed scenario stage time ("
            << format_ratio(scenario_seconds /
                            (batch_seconds > 0.0 ? batch_seconds : 1.0))
            << " speedup)\n";
  std::cout << "\nPaper observation: replicating+mapping dominates in HT "
               "mode while dataflow scheduling dominates in LL mode; the "
               "overall compiling time stays in tens of seconds.\n";
  return 0;
}
