#ifndef PIMCOMP_BENCH_BENCH_COMMON_HPP
#define PIMCOMP_BENCH_BENCH_COMMON_HPP

// Shared plumbing for the table/figure reproduction binaries.
//
// Environment knobs:
//   PIMCOMP_BENCH_FULL=1   full canonical input resolutions (224/299) and
//                          the paper's GA budget (population 100, 200
//                          generations). Default uses 64x64 inputs (96 for
//                          inception-v3) and a reduced GA budget so the
//                          whole suite finishes in minutes; ratios are
//                          shape-driven and survive the scaling (DESIGN.md
//                          §3).
//   PIMCOMP_BENCH_POP / PIMCOMP_BENCH_GENS   override the GA budget.
//   PIMCOMP_BENCH_SEED                       override the RNG seed.
//   PIMCOMP_BENCH_JOBS     worker threads per scenario batch (default: one
//                          per hardware thread; 1 = sequential).

#include <cstdlib>
#include <string>
#include <utility>

#include "core/session.hpp"
#include "graph/zoo/zoo.hpp"

namespace pimcomp::bench {

struct BenchConfig {
  bool full = false;
  int ga_population = 40;
  int ga_generations = 60;
  std::uint64_t seed = 1;
  int jobs = 0;  ///< compile_all() fan-out; 0 = one per hardware thread

  static BenchConfig from_env() {
    BenchConfig cfg;
    if (const char* full = std::getenv("PIMCOMP_BENCH_FULL")) {
      cfg.full = std::string(full) == "1";
    }
    if (cfg.full) {
      cfg.ga_population = 100;
      cfg.ga_generations = 200;
    }
    if (const char* pop = std::getenv("PIMCOMP_BENCH_POP")) {
      cfg.ga_population = std::atoi(pop);
    }
    if (const char* gens = std::getenv("PIMCOMP_BENCH_GENS")) {
      cfg.ga_generations = std::atoi(gens);
    }
    if (const char* seed = std::getenv("PIMCOMP_BENCH_SEED")) {
      cfg.seed = static_cast<std::uint64_t>(std::atoll(seed));
    }
    if (const char* jobs = std::getenv("PIMCOMP_BENCH_JOBS")) {
      cfg.jobs = std::atoi(jobs);
    }
    return cfg;
  }
};

/// The five benchmark networks at bench resolution.
inline Graph bench_model(const std::string& name, const BenchConfig& cfg) {
  if (cfg.full) return zoo::build(name);  // canonical 224 / 299
  return zoo::build(name, name == "inception-v3" ? 96 : 64);
}

/// Hardware sized for the model with replication headroom (whole chips).
inline HardwareConfig bench_hardware(const Graph& graph) {
  return fit_core_count(graph, HardwareConfig::puma_default(), 3.0);
}

inline CompileOptions bench_options(const BenchConfig& cfg, PipelineMode mode,
                                    int parallelism,
                                    const std::string& mapper = "ga",
                                    MemoryPolicy policy =
                                        MemoryPolicy::kAgReuse) {
  CompileOptions options;
  options.mode = mode;
  options.parallelism_degree = parallelism;
  options.mapper = mapper;
  options.memory_policy = policy;
  options.ga.population = cfg.ga_population;
  options.ga.generations = cfg.ga_generations;
  options.seed = cfg.seed;
  return options;
}

/// Session over a bench model with auto-fitted hardware; every run through
/// the same session reuses the cached node partitioning. Sessions are
/// pinned in place (mutex-guarded caches), so this returns a prvalue and
/// callers opt into batch fan-out with `session.set_jobs(cfg.jobs)`.
inline CompilerSession bench_session(const std::string& name,
                                     const BenchConfig& cfg) {
  Graph graph = bench_model(name, cfg);
  const HardwareConfig hw = bench_hardware(graph);
  return CompilerSession(std::move(graph), hw);
}

struct RunOutcome {
  CompileResult result;
  SimReport sim;
};

inline RunOutcome run_one(CompilerSession& session,
                          const CompileOptions& options) {
  CompileResult result = session.compile(options);
  SimReport sim = session.simulate(result);
  return {std::move(result), std::move(sim)};
}

}  // namespace pimcomp::bench

#endif  // PIMCOMP_BENCH_BENCH_COMMON_HPP
