// Measures the fleet serving stack end to end with in-process daemons:
// what a single pimcompd sustains on cold compiles and warm (memory-tier)
// cache hits, what the pimcomp_router relay costs on top of the warm
// path, and what a remote cache hit costs — a fresh daemon resolving a
// mapping from a warmed peer's disk over the wire instead of recomputing
// it. Everything runs over real Unix sockets and the real line protocol;
// only the process boundary is elided.
//
// PIMCOMP_BENCH_JSON=path writes the measurements as a machine-readable
// artifact (one row per leg), same idiom as table2_compile_time. The
// checked-in bench/fleet_baseline.json pins one reference machine's
// numbers for eyeballing drift; it is deliberately not a CI gate —
// wall-clock serving latency is far too machine-dependent for that.

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <string>
#include <utility>

#include "bench_common.hpp"
#include "common/json.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"  // seconds_since
#include "fleet/router.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace {

using namespace pimcomp;

std::string socket_path(const std::string& tag) {
  return "/tmp/pimcomp-fleet-bench-" + std::to_string(::getpid()) + "-" +
         tag + ".sock";
}

std::string temp_cache_dir(const std::string& tag) {
  std::string templ = "/tmp/pimcomp-fleet-bench-" + tag + "-XXXXXX";
  char* made = ::mkdtemp(templ.data());
  if (made == nullptr) throw std::runtime_error("mkdtemp failed");
  return templ;
}

/// One single-scenario squeezenet compile; the seed varies the cache key,
/// so distinct seeds are cold compiles and a repeated seed is a cache hit.
serve::CompileRequest bench_request(const bench::BenchConfig& cfg,
                                    std::uint64_t seed) {
  serve::CompileRequest request;
  request.model = "squeezenet";
  request.input_size = 32;
  request.simulate = false;
  serve::ScenarioSpec spec;
  spec.label = "seed-" + std::to_string(seed);
  spec.options = bench::bench_options(cfg, PipelineMode::kLowLatency, 4);
  spec.options.ga.population = 6;
  spec.options.ga.generations = 3;
  spec.options.seed = seed;
  request.scenarios.push_back(std::move(spec));
  return request;
}

/// Submits `count` requests over one connection and returns elapsed
/// seconds. The i-th request uses seed `first + i * step` — step 1 walks
/// distinct seeds (cold), step 0 hammers one seed (warm). Every outcome
/// must be ok — a failed compile would silently time the error path
/// instead.
double timed_submits(const std::string& endpoint,
                     const bench::BenchConfig& cfg, std::uint64_t first,
                     int count, std::uint64_t step) {
  serve::CompileClient client = serve::CompileClient::connect(endpoint);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < count; ++i) {
    const serve::CompileReply reply = client.submit(
        bench_request(cfg, first + static_cast<std::uint64_t>(i) * step));
    if (reply.error_count != 0) {
      throw std::runtime_error("bench scenario failed against " + endpoint);
    }
  }
  return seconds_since(t0);
}

}  // namespace

int main() {
  using namespace pimcomp;
  using namespace pimcomp::bench;
  const BenchConfig cfg = BenchConfig::from_env();
  constexpr int kColdRequests = 16;
  constexpr int kWarmRequests = 64;
  constexpr int kRemoteRequests = 16;

  Table table("Fleet serving: requests over real Unix sockets, one "
              "single-scenario compile per request");
  table.set_header({"leg", "requests", "total (s)", "req/s", "ms/req"});
  Json rows = Json::array();
  const auto add_row = [&](const std::string& leg, int requests,
                           double seconds) {
    table.add_row({leg, std::to_string(requests), format_double(seconds, 3),
                   format_double(requests / seconds, 1),
                   format_double(seconds * 1e3 / requests, 2)});
    Json row = Json::object();
    row["leg"] = leg;
    row["requests"] = requests;
    row["seconds"] = seconds;
    row["requests_per_s"] = requests / seconds;
    rows.push_back(std::move(row));
    std::cout << "." << std::flush;
  };

  // --- One worker daemon with a disk cache. --------------------------------
  const std::string warm_dir = temp_cache_dir("warm");
  serve::ServerOptions daemon_options;
  daemon_options.unix_path = socket_path("daemon");
  daemon_options.jobs = 2;
  daemon_options.cache.dir = warm_dir;
  serve::CompileServer daemon(daemon_options);
  daemon.start();

  // Cold: distinct seeds, every request runs the full pipeline.
  add_row("direct cold compile", kColdRequests,
          timed_submits(daemon.endpoint(), cfg, 1, kColdRequests, 1));

  // Warm: re-submit seed 1 — the daemon's session answers from the
  // memory tier, so this times protocol + session lookup alone, i.e. the
  // serving floor.
  add_row("direct warm (memory hit)", kWarmRequests,
          timed_submits(daemon.endpoint(), cfg, 1, kWarmRequests, 0));

  // --- The same warm requests relayed through a router. --------------------
  fleet::RouterOptions router_options;
  router_options.unix_path = socket_path("router");
  router_options.backends = {daemon.endpoint()};
  fleet::Router router(std::move(router_options));
  router.start();

  add_row("router warm (relay overhead)", kWarmRequests,
          timed_submits(router.endpoint(), cfg, 1, kWarmRequests, 0));
  router.stop();

  // --- Remote cache hits. --------------------------------------------------
  // A fresh daemon whose only peer is the warmed one: every request below
  // misses memory and disk locally and is resolved over the wire from the
  // peer's disk tier — the cost of *not* recomputing a mapping.
  const std::string fresh_dir = temp_cache_dir("fresh");
  serve::ServerOptions fresh_options;
  fresh_options.unix_path = socket_path("fresh");
  fresh_options.jobs = 2;
  fresh_options.cache.dir = fresh_dir;
  fresh_options.cache.peers = {daemon.endpoint()};
  serve::CompileServer fresh(fresh_options);
  fresh.start();

  // Seeds 1..kRemoteRequests were all compiled (and disk-persisted) by the
  // warm daemon in the cold leg above.
  add_row("remote hit (peer disk over wire)", kRemoteRequests,
          timed_submits(fresh.endpoint(), cfg, 1, kRemoteRequests, 1));

  fresh.stop();
  daemon.stop();

  std::cout << "\n\n";
  table.print();
  std::cout << "\nThe warm legs bound the serving overhead: the router "
               "relay adds one socket hop and a JSON re-parse per frame, "
               "and a remote hit replaces a full mapping run with one "
               "round-trip to a peer's disk tier.\n";

  if (const char* json_path = std::getenv("PIMCOMP_BENCH_JSON")) {
    Json out = Json::object();
    Json config = Json::object();
    config["population"] = 6;
    config["generations"] = 3;
    config["seed"] = static_cast<std::int64_t>(cfg.seed);
    config["cold_requests"] = kColdRequests;
    config["warm_requests"] = kWarmRequests;
    config["remote_requests"] = kRemoteRequests;
    out["config"] = std::move(config);
    out["legs"] = std::move(rows);
    try {
      json_to_file(out, json_path);
      std::cout << "wrote fleet serving timings to " << json_path << '\n';
    } catch (const std::exception& e) {
      std::cerr << "failed to write " << json_path << ": " << e.what()
                << '\n';
      return 1;
    }
  }
  return 0;
}
