// Times the lowering stage in isolation: compile each benchmark network
// once (three classic stages, no backend), then repeatedly lower the
// compiled schedule through the `isa-json` backend and round-trip the
// resulting artifact through its JSON codec — the costs a lowering-enabled
// compile, the disk cache, and the serve protocol's v4 artifact frames add
// on top of a plain compile. A final column executes the stream through
// the `sim` backend against the legacy simulator on the original schedule;
// the two reports must stay bit-identical (the bench aborts otherwise).
//
// PIMCOMP_BENCH_JSON=path writes the measurements as a machine-readable
// artifact (one row per model), same idiom as table2_compile_time.

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "backend/backend.hpp"
#include "backend/instruction_stream.hpp"
#include "bench_common.hpp"
#include "common/json.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"  // seconds_since
#include "sim/simulator.hpp"

int main() {
  using namespace pimcomp;
  using namespace pimcomp::bench;
  const BenchConfig cfg = BenchConfig::from_env();
  constexpr int kReps = 5;

  Table table("Backend lowering: schedule -> InstructionStream, GA pop " +
              std::to_string(cfg.ga_population) + " x " +
              std::to_string(cfg.ga_generations) + " generations");
  table.set_header({"model", "ops", "cores", "lower (ms)", "to_json (ms)",
                    "from_json (ms)", "artifact KiB", "sim exec (ms)",
                    "legacy sim (ms)"});

  const std::unique_ptr<Backend> emitter = BackendRegistry::create("isa-json");
  const std::unique_ptr<Backend> executor = BackendRegistry::create("sim");
  Json rows = Json::array();

  for (const std::string& name : zoo::model_names()) {
    Graph graph = bench_model(name, cfg);
    const HardwareConfig hw = bench_hardware(graph);
    CompilerSession session(std::move(graph), hw);
    const CompileOptions options =
        bench_options(cfg, PipelineMode::kLowLatency, 4);
    const CompileResult result = session.compile(options);

    LowerInput input;
    input.schedule = &result.schedule;
    input.solution = &result.solution;
    input.graph = &session.graph();
    input.hardware = &hw;
    input.options = &result.options;

    // Best-of-kReps for each leg: lowering, then both codec directions.
    double lower_s = 0.0, encode_s = 0.0, decode_s = 0.0;
    InstructionStream stream;
    Json artifact;
    for (int rep = 0; rep < kReps; ++rep) {
      auto t0 = std::chrono::steady_clock::now();
      stream = emitter->lower(input);
      const double lower = seconds_since(t0);

      t0 = std::chrono::steady_clock::now();
      artifact = stream.to_json();
      const double encode = seconds_since(t0);

      t0 = std::chrono::steady_clock::now();
      const InstructionStream parsed = InstructionStream::from_json(artifact);
      const double decode = seconds_since(t0);
      if (parsed.total_ops != stream.total_ops) return 1;  // defensive

      if (rep == 0 || lower < lower_s) lower_s = lower;
      if (rep == 0 || encode < encode_s) encode_s = encode;
      if (rep == 0 || decode < decode_s) decode_s = decode;
    }
    const std::size_t artifact_bytes = artifact.dump(-1).size();

    auto t0 = std::chrono::steady_clock::now();
    const SimReport backend_sim = executor->execute(stream, hw);
    const double exec_s = seconds_since(t0);

    SimOptions sim_options;
    sim_options.parallelism_degree = result.options.parallelism_degree;
    sim_options.mode = result.options.mode;
    t0 = std::chrono::steady_clock::now();
    const SimReport legacy = Simulator(hw, sim_options).run(result.schedule);
    const double legacy_s = seconds_since(t0);

    if (backend_sim.to_string() != legacy.to_string()) {
      std::cerr << name << ": sim backend diverged from the legacy "
                << "simulator\n";
      return 1;
    }

    table.add_row(
        {name, std::to_string(stream.total_ops),
         std::to_string(stream.core_count()),
         format_double(lower_s * 1e3, 2), format_double(encode_s * 1e3, 2),
         format_double(decode_s * 1e3, 2),
         format_double(static_cast<double>(artifact_bytes) / 1024.0, 1),
         format_double(exec_s * 1e3, 2), format_double(legacy_s * 1e3, 2)});

    Json row = Json::object();
    row["model"] = name;
    row["total_ops"] = stream.total_ops;
    row["cores"] = stream.core_count();
    row["lower_s"] = lower_s;
    row["to_json_s"] = encode_s;
    row["from_json_s"] = decode_s;
    row["artifact_bytes"] = static_cast<std::int64_t>(artifact_bytes);
    row["sim_execute_s"] = exec_s;
    row["legacy_sim_s"] = legacy_s;
    rows.push_back(std::move(row));
    std::cout << "." << std::flush;
  }
  std::cout << "\n\n";
  table.print();
  std::cout << "\nLowering and both codec directions are linear in the "
               "instruction count and stay far below one mapping "
               "generation; the sim backend's interpreter matches the "
               "legacy simulator bit for bit.\n";

  if (const char* json_path = std::getenv("PIMCOMP_BENCH_JSON")) {
    Json out = Json::object();
    Json config = Json::object();
    config["population"] = cfg.ga_population;
    config["generations"] = cfg.ga_generations;
    config["seed"] = static_cast<std::int64_t>(cfg.seed);
    config["full"] = cfg.full;
    config["reps"] = kReps;
    out["config"] = std::move(config);
    out["models"] = std::move(rows);
    try {
      json_to_file(out, json_path);
      std::cout << "wrote lowering timings to " << json_path << '\n';
    } catch (const std::exception& e) {
      std::cerr << "failed to write " << json_path << ": " << e.what()
                << '\n';
      return 1;
    }
  }
  return 0;
}
