// Reproduces Fig 8: normalized throughput (HT mode, top) and normalized
// speed (LL mode, bottom) of PIMCOMP vs the PUMA-like baseline across
// parallelism degrees {1, 20, 40, 200, 2000} for the five benchmark
// networks. Values are PUMA-time / PIMCOMP-time, i.e. PUMA-like == 1.00x.

#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"

namespace {

using namespace pimcomp;
using namespace pimcomp::bench;

// Fig 8 reference series from the paper, for side-by-side comparison.
struct PaperRow {
  const char* model;
  double ht[5];
  double ll[5];
};
constexpr PaperRow kPaper[] = {
    {"vgg16", {3.9, 3.1, 2.0, 1.5, 1.5}, {3.1, 2.6, 2.5, 2.5, 2.5}},
    {"resnet18", {2.0, 1.8, 1.4, 1.3, 1.3}, {4.9, 3.9, 3.8, 3.6, 3.6}},
    {"googlenet", {1.4, 1.2, 1.2, 1.2, 1.2}, {2.6, 1.8, 1.7, 1.6, 1.6}},
    {"inception-v3", {2.0, 1.3, 1.3, 1.3, 1.3}, {2.3, 2.2, 2.2, 2.2, 2.2}},
    {"squeezenet", {1.4, 1.5, 1.4, 1.4, 1.4}, {2.6, 2.1, 2.0, 1.9, 1.8}},
};

}  // namespace

int main() {
  const BenchConfig cfg = BenchConfig::from_env();
  const std::vector<int> parallelism = {1, 20, 40, 200, 2000};

  for (PipelineMode mode :
       {PipelineMode::kHighThroughput, PipelineMode::kLowLatency}) {
    const bool ht = mode == PipelineMode::kHighThroughput;
    Table table(std::string("Fig 8 (") + (ht ? "top" : "bottom") +
                "): normalized " + (ht ? "throughput" : "speed") + " in " +
                to_string(mode) + " mode (PUMA-like = 1.00x)");
    std::vector<std::string> header = {"model"};
    for (int p : parallelism) header.push_back("P=" + std::to_string(p));
    header.push_back("paper P=1");
    header.push_back("paper P=2000");
    table.set_header(header);

    int model_index = 0;
    for (const std::string& name : zoo::model_names()) {
      // One session per model: the ten runs below share one partitioning.
      CompilerSession session = bench_session(name, cfg);
      std::vector<std::string> row = {name};
      for (int p : parallelism) {
        const RunOutcome ga =
            run_one(session, bench_options(cfg, mode, p, "ga"));
        const RunOutcome puma =
            run_one(session, bench_options(cfg, mode, p, "puma"));
        const double ratio = static_cast<double>(puma.sim.makespan) /
                             static_cast<double>(ga.sim.makespan);
        row.push_back(format_ratio(ratio));
      }
      const PaperRow& paper = kPaper[model_index++];
      const double* series = ht ? paper.ht : paper.ll;
      row.push_back(format_ratio(series[0], 1));
      row.push_back(format_ratio(series[4], 1));
      table.add_row(row);
      std::cout << "." << std::flush;
    }
    std::cout << "\n\n";
    table.print();
    std::cout << '\n';
  }
  std::cout << "Paper headline: PIMCOMP gains 1.6x throughput (HT) and 2.4x "
               "latency (LL) on average over PUMA-like; improvements shrink "
               "as the parallelism degree grows.\n";
  return 0;
}
