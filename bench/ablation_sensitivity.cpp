// Sensitivity bench (beyond the paper's figures): how the compiled result
// responds to the two main hardware levers — crossbar geometry and the
// parallelism degree (on-chip bandwidth).

#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace pimcomp;
  using namespace pimcomp::bench;
  const BenchConfig cfg = BenchConfig::from_env();

  // ---- Crossbar geometry sweep (LL latency, resnet18) ----------------------
  {
    Table table("Crossbar-size sensitivity: resnet18, LL mode, P=20");
    table.set_header({"crossbar", "xbars/core", "cores", "LL latency (us)",
                      "HT makespan (us)", "xbar utilization"});
    struct Geometry {
      int rows, cols, per_core;
    };
    const Geometry geometries[] = {
        {64, 64, 128}, {128, 128, 64}, {256, 256, 16}};
    // One session, one model build; each geometry contributes an LL and an
    // HT scenario with a hardware override (its workload is cached per
    // hardware fingerprint) and the whole sweep is one parallel batch.
    CompilerSession session(bench_model("resnet18", cfg),
                            HardwareConfig::puma_default());
    session.set_jobs(cfg.jobs);
    for (const Geometry& g : geometries) {
      HardwareConfig hw = HardwareConfig::puma_default();
      hw.xbar_rows = g.rows;
      hw.xbar_cols = g.cols;
      hw.xbars_per_core = g.per_core;
      hw = fit_core_count(session.graph(), hw, 3.0);
      const std::string label =
          std::to_string(g.rows) + "x" + std::to_string(g.cols);
      session.enqueue(Scenario{
          label, bench_options(cfg, PipelineMode::kLowLatency, 20), hw});
      session.enqueue(Scenario{
          label, bench_options(cfg, PipelineMode::kHighThroughput, 20), hw});
    }
    const std::vector<ScenarioOutcome> outcomes = session.compile_all();
    for (std::size_t i = 0; i + 1 < outcomes.size(); i += 2) {
      const Geometry& g = geometries[i / 2];
      const ScenarioOutcome& ll_outcome = outcomes[i];
      const ScenarioOutcome& ht_outcome = outcomes[i + 1];
      if (!ll_outcome.ok() || !ht_outcome.ok()) {
        std::cerr << "geometry '" << ll_outcome.label << "' failed: "
                  << (ll_outcome.ok() ? ht_outcome.error : ll_outcome.error)
                  << '\n';
        continue;
      }
      const CompileResult& ll = *ll_outcome.result;
      const SimReport ll_sim = session.simulate(ll);
      const SimReport ht_sim = session.simulate(*ht_outcome.result);
      const double util =
          static_cast<double>(ll.solution.total_xbars_used()) /
          static_cast<double>(ll.workload->total_xbars_available());
      table.add_row({ll_outcome.label, std::to_string(g.per_core),
                     std::to_string(ll.workload->hardware().core_count),
                     format_double(to_us(ll_sim.makespan), 1),
                     format_double(to_us(ht_sim.makespan), 1),
                     format_double(100 * util, 1) + "%"});
      std::cout << "." << std::flush;
    }
    std::cout << "\n\n";
    table.print();
    std::cout << '\n';
  }

  // ---- Parallelism-degree sweep (both modes, googlenet) --------------------
  {
    CompilerSession session = bench_session("googlenet", cfg);
    Table table("Parallelism sensitivity: googlenet");
    table.set_header({"parallelism", "HT makespan (us)", "LL latency (us)",
                      "HT energy (uJ)"});
    for (int p : {1, 5, 20, 40, 200, 2000}) {
      const RunOutcome ht = run_one(
          session, bench_options(cfg, PipelineMode::kHighThroughput, p));
      const RunOutcome ll = run_one(
          session, bench_options(cfg, PipelineMode::kLowLatency, p));
      table.add_row({std::to_string(p),
                     format_double(to_us(ht.sim.makespan), 1),
                     format_double(to_us(ll.sim.makespan), 1),
                     format_double(to_uj(ht.sim.total_energy()), 0)});
      std::cout << "." << std::flush;
    }
    std::cout << "\n\n";
    table.print();
  }
  return 0;
}
