// Ablation bench (beyond the paper's figures): isolates where PIMCOMP's
// gains come from.
//  1. Mapper ladder: greedy (no replication) -> random (GA generation 0) ->
//     PUMA-like (balanced heuristic) -> full GA.
//  2. Mutation-operator ablation: disable each of the four GA mutation
//     operators (paper §IV-C1, ops I-IV) in turn.

#include <iostream>

#include "bench_common.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace pimcomp;
  using namespace pimcomp::bench;
  const BenchConfig cfg = BenchConfig::from_env();
  constexpr int kParallelism = 20;

  for (const std::string& name : {std::string("resnet18"),
                                  std::string("squeezenet")}) {
    CompilerSession session = bench_session(name, cfg);

    Table ladder("Mapper ladder on " + name + " (lower is better)");
    ladder.set_header({"mapper", "HT makespan (us)", "LL latency (us)",
                       "LL energy (uJ)"});
    for (int step = 0; step < 4; ++step) {
      std::string label;
      auto make_options = [&](PipelineMode mode) {
        CompileOptions options = bench_options(cfg, mode, kParallelism, "ga");
        switch (step) {
          case 0:
            options.mapper = "greedy";
            label = "greedy (R=1)";
            break;
          case 1:
            options.mapper = "ga";
            options.ga.generations = 0;  // random initialization only
            label = "random init";
            break;
          case 2:
            options.mapper = "puma";
            label = "puma-like";
            break;
          default:
            options.mapper = "ga";
            label = "pimcomp GA";
            break;
        }
        return options;
      };
      const RunOutcome ht =
          run_one(session, make_options(PipelineMode::kHighThroughput));
      const RunOutcome ll =
          run_one(session, make_options(PipelineMode::kLowLatency));
      ladder.add_row({label, format_double(to_us(ht.sim.makespan), 1),
                      format_double(to_us(ll.sim.makespan), 1),
                      format_double(to_uj(ll.sim.total_energy()), 0)});
      std::cout << "." << std::flush;
    }
    std::cout << "\n\n";
    ladder.print();

    Table ops("GA mutation-operator ablation on " + name +
              " (LL latency, us)");
    ops.set_header({"configuration", "LL latency (us)", "final fitness (us)"});
    const char* labels[] = {"all operators", "no grow (op I)",
                            "no shrink (op II)", "no spread (op III)",
                            "no merge (op IV)"};
    for (int disabled = -1; disabled < 4; ++disabled) {
      CompileOptions options =
          bench_options(cfg, PipelineMode::kLowLatency, kParallelism, "ga");
      options.ga.enable_grow = disabled != 0;
      options.ga.enable_shrink = disabled != 1;
      options.ga.enable_spread = disabled != 2;
      options.ga.enable_merge = disabled != 3;
      const RunOutcome out = run_one(session, options);
      ops.add_row({labels[disabled + 1],
                   format_double(to_us(out.sim.makespan), 1),
                   format_double(out.result.estimated_fitness / kPsPerUs, 1)});
      std::cout << "." << std::flush;
    }
    std::cout << "\n\n";
    ops.print();
    std::cout << '\n';
  }
  return 0;
}
